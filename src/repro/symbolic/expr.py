"""Canonical symbolic integer expressions.

The hybrid-analysis framework reasons about array subscripts, loop bounds
and gate conditions symbolically.  This module provides an immutable,
hashable expression type :class:`Expr` kept in a *polynomial normal form*:
a finite sum of terms, each term an integer coefficient times a product of
*atoms* (powers of opaque symbolic objects).

Atoms are themselves small immutable objects:

* :class:`Sym` -- a named integer symbol (a scalar program variable),
* :class:`ArrayRef` -- an opaque indexed read such as ``IA(i)``,
* :class:`Min` / :class:`Max` -- irreducible extrema of expressions,
* :class:`FloorDiv` -- an irreducible integer division.

Keeping expressions in normal form makes structural equality coincide with
(most) semantic equality, which the inference rules of the FACTOR algorithm
rely on: e.g. proving two LMADs share a stride reduces to an ``==`` check.

Expressions and symbols are *hash-consed* (see :mod:`repro.symbolic.intern`):
the canonicalizing constructors intern their results, so structural
equality additionally coincides with pointer equality for values built
after the last :func:`~repro.symbolic.intern.clear_caches` call.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Callable, Iterable, Iterator, Mapping, Union

from .. import profiling as _profiling

from .intern import Interner

__all__ = [
    "Atom",
    "Sym",
    "ArrayRef",
    "Min",
    "Max",
    "FloorDiv",
    "Expr",
    "ExprLike",
    "as_expr",
    "sym",
    "smin",
    "smax",
    "floor_div",
    "EvalEnv",
]

#: Anything accepted where an expression is expected.
ExprLike = Union["Expr", "Atom", int]

#: A runtime environment: scalar names map to ints, array names map either
#: to a sequence or to a callable from index tuples to ints.
EvalEnv = Mapping[str, object]


def _sortable(value) -> tuple:
    """Recursively flatten keys containing Exprs into comparable tuples."""
    if isinstance(value, Expr):
        return ("E", value.sort_key())
    if isinstance(value, tuple):
        return ("T",) + tuple(_sortable(v) for v in value)
    return ("V", type(value).__name__, value)


class Atom:
    """Base class of opaque symbolic atoms.

    Atoms compare by their :meth:`key`, are hashable and totally ordered so
    monomials have a canonical ordering (the ordering key is cached).
    """

    __slots__ = ("_ok_cache", "_hash_cache")

    def key(self) -> tuple:
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def evaluate(self, env: EvalEnv) -> int:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Return *self* with symbols replaced, as an expression."""
        raise NotImplementedError

    # -- comparisons / hashing ------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.key() == other.key()

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self._order_key() < other._order_key()

    def _order_key(self) -> tuple:
        cached = getattr(self, "_ok_cache", None)
        if cached is None:
            cached = (type(self).__name__,) + _sortable(self.key())
            self._ok_cache = cached
        return cached

    def __hash__(self) -> int:
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((type(self).__name__,) + self.key())
            self._hash_cache = cached
        return cached

    # -- arithmetic sugar (delegate to Expr) ----------------------------
    def as_expr(self) -> "Expr":
        return Expr._from_terms({((self, 1),): 1})

    def __add__(self, other: ExprLike) -> "Expr":
        return self.as_expr() + other

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> "Expr":
        return self.as_expr() - other

    def __rsub__(self, other: ExprLike) -> "Expr":
        return as_expr(other) - self.as_expr()

    def __mul__(self, other: ExprLike) -> "Expr":
        return self.as_expr() * other

    __rmul__ = __mul__

    def __neg__(self) -> "Expr":
        return -self.as_expr()


#: Interning table for :class:`Sym` atoms (symbol names recur endlessly).
_SYM_INTERN = Interner("symbolic.sym", max_size=100_000)


@total_ordering
class Sym(Atom):
    """A named integer-valued program symbol.

    Instances are hash-consed by name: ``Sym('i') is Sym('i')``.
    """

    __slots__ = ("name",)

    def __new__(cls, name: str):
        cached = _SYM_INTERN.data.get(name)
        if cached is not None:
            _SYM_INTERN.hits += 1
            return cached
        _SYM_INTERN.misses += 1
        self = super().__new__(cls)
        return _SYM_INTERN.put(name, self)

    def __init__(self, name: str):
        self.name = name

    def __getnewargs__(self) -> tuple:
        return (self.name,)

    def key(self) -> tuple:
        return (self.name,)

    def free_symbols(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, env: EvalEnv) -> int:
        try:
            value = env[self.name]
        except KeyError:
            raise KeyError(f"unbound symbol {self.name!r}") from None
        if not isinstance(value, int):
            raise TypeError(f"symbol {self.name!r} bound to non-int {value!r}")
        return value

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        if self.name in mapping:
            return mapping[self.name]
        return self.as_expr()

    def __repr__(self) -> str:
        return self.name


class ArrayRef(Atom):
    """An opaque read of an array element, e.g. ``IA(i)``.

    The framework treats index-array values as uninterpreted terms; two
    references are equal iff array name and index expressions are equal.
    """

    __slots__ = ("array", "indices")

    def __init__(self, array: str, indices: Iterable[ExprLike]):
        self.array = array
        self.indices = tuple(as_expr(i) for i in indices)

    def key(self) -> tuple:
        return (self.array, self.indices)

    def free_symbols(self) -> frozenset[str]:
        out = frozenset({self.array})
        for idx in self.indices:
            out |= idx.free_symbols()
        return out

    def evaluate(self, env: EvalEnv) -> int:
        idx = tuple(i.evaluate(env) for i in self.indices)
        try:
            arr = env[self.array]
        except KeyError:
            raise KeyError(f"unbound array {self.array!r}") from None
        if callable(arr):
            return int(arr(*idx))
        # 1-based Fortran-style indexing over Python sequences.
        if len(idx) != 1:
            raise TypeError(
                f"array {self.array!r} bound to a sequence but indexed "
                f"with {len(idx)} subscripts"
            )
        return int(arr[idx[0] - 1])

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        new_indices = tuple(i.substitute(mapping) for i in self.indices)
        return ArrayRef(self.array, new_indices).as_expr()

    def __repr__(self) -> str:
        inside = ",".join(repr(i) for i in self.indices)
        return f"{self.array}({inside})"


class _Extremum(Atom):
    """Common implementation of irreducible Min/Max atoms."""

    __slots__ = ("args",)
    _pick: Callable  # min or max, set by subclass
    _name: str

    def __init__(self, args: Iterable[ExprLike]):
        canon = tuple(sorted({as_expr(a) for a in args}, key=lambda e: e.sort_key()))
        if len(canon) < 2:
            raise ValueError(f"{self._name} needs at least two distinct arguments")
        self.args = canon

    def key(self) -> tuple:
        return (self.args,)

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols()
        return out

    def evaluate(self, env: EvalEnv) -> int:
        return type(self)._pick(a.evaluate(env) for a in self.args)

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        new_args = [a.substitute(mapping) for a in self.args]
        return _make_extremum(type(self), new_args)

    def __repr__(self) -> str:
        inside = ",".join(repr(a) for a in self.args)
        return f"{self._name}({inside})"


class Min(_Extremum):
    """Irreducible minimum of two or more expressions."""

    __slots__ = ()
    _pick = min
    _name = "min"


class Max(_Extremum):
    """Irreducible maximum of two or more expressions."""

    __slots__ = ()
    _pick = max
    _name = "max"


class FloorDiv(Atom):
    """Irreducible floor division ``num // den`` (den a positive constant)."""

    __slots__ = ("num", "den")

    def __init__(self, num: ExprLike, den: int):
        if den <= 0:
            raise ValueError("FloorDiv denominator must be positive")
        self.num = as_expr(num)
        self.den = den

    def key(self) -> tuple:
        return (self.num, self.den)

    def free_symbols(self) -> frozenset[str]:
        return self.num.free_symbols()

    def evaluate(self, env: EvalEnv) -> int:
        return self.num.evaluate(env) // self.den

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return floor_div(self.num.substitute(mapping), self.den)

    def __repr__(self) -> str:
        return f"({self.num!r} div {self.den})"


#: A monomial: sorted tuple of (atom, positive power) pairs.  The empty
#: tuple is the constant monomial.
Monomial = tuple


#: Interning table for :class:`Expr`: canonical terms tuple -> instance.
_EXPR_INTERN = Interner("symbolic.expr", max_size=1_000_000)


class Expr:
    """An integer polynomial over symbolic atoms, in canonical form.

    Construct via :func:`as_expr`, :func:`sym`, arithmetic on existing
    expressions, or the atom classes.  Instances are immutable and hashable;
    structural equality is canonical-form equality.

    Expressions are hash-consed: :meth:`_from_terms` interns on the
    canonical terms tuple, so structurally equal expressions built
    anywhere in the system are pointer-equal.  Equality therefore hits
    the identity fast path on the (very hot) comparison-heavy paths of
    the FACTOR rules, and every downstream cache can key on expressions
    cheaply.
    """

    __slots__ = ("_terms", "_hash", "_free_cache")

    def __init__(self, *args, **kwargs):
        raise TypeError("use as_expr()/sym() or arithmetic to build Expr")

    @classmethod
    def _from_terms(cls, terms: Mapping[Monomial, int]) -> "Expr":
        clean = {m: c for m, c in terms.items() if c != 0}
        canonical = tuple(sorted(clean.items(), key=cls._mono_key))
        cached = _EXPR_INTERN.data.get(canonical)
        if cached is not None:
            _EXPR_INTERN.hits += 1
            return cached
        _EXPR_INTERN.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "_terms", canonical)
        object.__setattr__(self, "_hash", hash(canonical))
        return _EXPR_INTERN.put(canonical, self)

    @staticmethod
    def _mono_key(item: tuple) -> tuple:
        mono, _coeff = item
        return (len(mono), tuple((a._order_key(), p) for a, p in mono))

    # -- basic queries ---------------------------------------------------
    @property
    def terms(self) -> tuple:
        """The canonical ``((monomial, coeff), ...)`` tuple."""
        return self._terms

    def is_constant(self) -> bool:
        return all(m == () for m, _ in self._terms)

    def constant_value(self) -> int:
        """The value of a constant expression (raises if symbolic)."""
        if not self.is_constant():
            raise ValueError(f"{self!r} is not constant")
        return self._terms[0][1] if self._terms else 0

    def constant_term(self) -> int:
        """The coefficient of the constant monomial (0 if absent)."""
        for mono, coeff in self._terms:
            if mono == ():
                return coeff
        return 0

    def free_symbols(self) -> frozenset[str]:
        # Cached per instance: expressions are hash-consed, so one
        # computation serves every structurally equal occurrence.
        cached = getattr(self, "_free_cache", None)
        if cached is None:
            _profiling.count("expr.free_symbols.compute")
            out: frozenset[str] = frozenset()
            for mono, _ in self._terms:
                for atom, _p in mono:
                    out |= atom.free_symbols()
            self._free_cache = out
            cached = out
        return cached

    def atoms(self) -> frozenset[Atom]:
        out: set[Atom] = set()
        for mono, _ in self._terms:
            for atom, _p in mono:
                out.add(atom)
        return frozenset(out)

    def depends_on(self, name: str) -> bool:
        return name in self.free_symbols()

    def is_affine_in(self, names: Iterable[str]) -> bool:
        """True if every monomial is degree <= 1 in atoms involving *names*.

        Atoms not involving any of *names* count as symbolic constants.
        """
        names = frozenset(names)
        for mono, _ in self._terms:
            degree = 0
            for atom, power in mono:
                if atom.free_symbols() & names:
                    if not isinstance(atom, Sym):
                        return False
                    degree += power
            if degree > 1:
                return False
        return True

    def coeff_of(self, name: str) -> "Expr":
        """Coefficient of the symbol *name*, assuming affineness in it.

        ``self == coeff_of(name) * name + drop(name)`` when
        ``is_affine_in([name])`` holds.
        """
        target = Sym(name)
        out: dict[Monomial, int] = {}
        for mono, coeff in self._terms:
            powers = dict(mono)
            if target in powers:
                if powers[target] != 1:
                    raise ValueError(f"{self!r} is not affine in {name!r}")
                rest = tuple(sorted(
                    ((a, p) for a, p in mono if a != target),
                    key=lambda ap: ap[0]._order_key(),
                ))
                out[rest] = out.get(rest, 0) + coeff
        return Expr._from_terms(out)

    def drop(self, name: str) -> "Expr":
        """The part of the expression not mentioning symbol *name*."""
        out: dict[Monomial, int] = {}
        for mono, coeff in self._terms:
            if any(name in a.free_symbols() for a, _p in mono):
                continue
            out[mono] = out.get(mono, 0) + coeff
        return Expr._from_terms(out)

    def max_degree_of(self, name: str) -> int:
        """Highest total power of atoms mentioning *name* in any monomial."""
        best = 0
        for mono, _ in self._terms:
            d = sum(p for a, p in mono if name in a.free_symbols())
            best = max(best, d)
        return best

    def content_gcd(self) -> int:
        """GCD of all coefficients (0 for the zero polynomial)."""
        from math import gcd

        g = 0
        for _mono, coeff in self._terms:
            g = gcd(g, abs(coeff))
        return g

    # -- evaluation / substitution ----------------------------------------
    def evaluate(self, env: EvalEnv) -> int:
        total = 0
        for mono, coeff in self._terms:
            value = coeff
            for atom, power in mono:
                value *= atom.evaluate(env) ** power
            total += value
        return total

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Simultaneously substitute symbols by expressions."""
        if not mapping or not (self.free_symbols() & mapping.keys()):
            return self
        total = as_expr(0)
        for mono, coeff in self._terms:
            value = as_expr(coeff)
            for atom, power in mono:
                replaced = atom.substitute(mapping)
                for _ in range(power):
                    value = value * replaced
            total = total + value
        return total

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        other = as_expr(other)
        out = dict(self._terms)
        for mono, coeff in other._terms:
            out[mono] = out.get(mono, 0) + coeff
        return Expr._from_terms(out)

    __radd__ = __add__

    def __neg__(self) -> "Expr":
        return Expr._from_terms({m: -c for m, c in self._terms})

    def __sub__(self, other: ExprLike) -> "Expr":
        return self + (-as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return as_expr(other) + (-self)

    def __mul__(self, other: ExprLike) -> "Expr":
        other = as_expr(other)
        out: dict[Monomial, int] = {}
        for m1, c1 in self._terms:
            for m2, c2 in other._terms:
                mono = _merge_monomials(m1, m2)
                out[mono] = out.get(mono, 0) + c1 * c2
        return Expr._from_terms(out)

    __rmul__ = __mul__

    def __floordiv__(self, den: int) -> "Expr":
        """Exact or irreducible floor division by a positive constant."""
        if not isinstance(den, int):
            return NotImplemented
        if den <= 0:
            raise ValueError("division by non-positive constant")
        if den == 1:
            return self
        if all(c % den == 0 for _m, c in self._terms):
            return Expr._from_terms({m: c // den for m, c in self._terms})
        return FloorDiv(self, den).as_expr()

    # -- ordering / display --------------------------------------------------
    def sort_key(self) -> tuple:
        return tuple((self._mono_key((m, c)), c) for m, c in self._terms)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, int):
            return self.is_constant() and self.constant_value() == other
        if isinstance(other, Atom):
            other = other.as_expr()
        if not isinstance(other, Expr):
            return NotImplemented
        return self._terms is other._terms or self._terms == other._terms

    def __hash__(self) -> int:
        if self.is_constant():
            return hash(self.constant_value())
        return self._hash

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._terms)

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in self._terms:
            if mono == ():
                parts.append(str(coeff))
                continue
            factors = []
            for atom, power in mono:
                factors.append(repr(atom) if power == 1 else f"{atom!r}^{power}")
            body = "*".join(factors)
            if coeff == 1:
                parts.append(body)
            elif coeff == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{coeff}*{body}")
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def _merge_monomials(m1: Monomial, m2: Monomial) -> Monomial:
    powers: dict[Atom, int] = dict(m1)
    for atom, p in m2:
        powers[atom] = powers.get(atom, 0) + p
    return tuple(sorted(powers.items(), key=lambda ap: ap[0]._order_key()))


def as_expr(value: ExprLike) -> Expr:
    """Coerce an int, atom, or expression to :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, Atom):
        return value.as_expr()
    if isinstance(value, bool):
        raise TypeError("booleans are not integer expressions")
    if isinstance(value, int):
        return Expr._from_terms({(): value})
    raise TypeError(f"cannot interpret {value!r} as a symbolic expression")


def sym(name: str) -> Expr:
    """Create a symbol expression: ``sym('N')``."""
    return Sym(name).as_expr()


def _make_extremum(cls: type, args: Iterable[ExprLike]) -> Expr:
    exprs: set[Expr] = set()
    for a in args:
        e = as_expr(a)
        # Flatten nested extrema of the same flavour.
        flattened = False
        if len(e.terms) == 1:
            mono, coeff = e.terms[0]
            if coeff == 1 and len(mono) == 1 and mono[0][1] == 1:
                atom = mono[0][0]
                if isinstance(atom, cls):
                    exprs.update(atom.args)
                    flattened = True
        if not flattened:
            exprs.add(e)
    constants = [e.constant_value() for e in exprs if e.is_constant()]
    symbolic = [e for e in exprs if not e.is_constant()]
    if constants:
        folded = cls._pick(constants)
        if not symbolic:
            return as_expr(folded)
        symbolic.append(as_expr(folded))
    if len(symbolic) == 1:
        return symbolic[0]
    return cls(symbolic).as_expr()


def smin(*args: ExprLike) -> Expr:
    """Symbolic minimum, folding constants and flattening nested mins."""
    if not args:
        raise ValueError("smin of no arguments")
    return _make_extremum(Min, args)


def smax(*args: ExprLike) -> Expr:
    """Symbolic maximum, folding constants and flattening nested maxes."""
    if not args:
        raise ValueError("smax of no arguments")
    return _make_extremum(Max, args)


def floor_div(num: ExprLike, den: int) -> Expr:
    """Floor division of an expression by a positive integer constant."""
    return as_expr(num) // den
