"""Symbolic integer/boolean algebra substrate.

This package provides the expression language over which the whole
hybrid-analysis framework reasons: canonical polynomial integer
expressions (:mod:`.expr`), boolean leaf predicates (:mod:`.boolean`),
range propagation (:mod:`.ranges`) and the symbolic Fourier-Motzkin
elimination of the paper's Fig. 6(b) (:mod:`.fourier_motzkin`).
"""

from .boolean import (
    FALSE,
    TRUE,
    AndB,
    BFalse,
    BoolExpr,
    BTrue,
    Cmp,
    Divides,
    NotB,
    OrB,
    b_and,
    b_not,
    b_or,
    cmp_eq,
    cmp_ge,
    cmp_gt,
    cmp_le,
    cmp_lt,
    cmp_ne,
    divides,
    eq0,
    ge0,
    gt0,
    ne0,
)
from .expr import (
    ArrayRef,
    Atom,
    EvalEnv,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Sym,
    as_expr,
    floor_div,
    smax,
    smin,
    sym,
)
from .fourier_motzkin import eliminate_symbol, reduce_ge0, reduce_gt0
from .intern import Interner, Memo, cache_stats, clear_caches
from .ranges import Bounds, BoundsEnv, bounds_of, definitely_nonneg, try_sign

__all__ = [
    # expr
    "Atom", "Sym", "ArrayRef", "Min", "Max", "FloorDiv", "Expr", "ExprLike",
    "as_expr", "sym", "smin", "smax", "floor_div", "EvalEnv",
    # boolean
    "BoolExpr", "BTrue", "BFalse", "TRUE", "FALSE", "Cmp", "Divides", "NotB",
    "AndB", "OrB", "b_and", "b_or", "b_not", "ge0", "gt0", "eq0", "ne0",
    "cmp_ge", "cmp_gt", "cmp_le", "cmp_lt", "cmp_eq", "cmp_ne", "divides",
    # ranges / FM
    "Bounds", "BoundsEnv", "bounds_of", "try_sign", "definitely_nonneg",
    "reduce_gt0", "reduce_ge0", "eliminate_symbol",
    # interning / memoization
    "Interner", "Memo", "cache_stats", "clear_caches",
]
