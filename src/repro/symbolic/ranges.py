"""Symbolic range propagation.

The inference rules frequently need conservative lower/upper bounds of a
symbolic expression given known ranges of some symbols (typically loop
indexes: ``1 <= i <= N``).  This module implements interval arithmetic on
the polynomial normal form of :class:`~repro.symbolic.expr.Expr`, returning
symbolic bound expressions when they exist and ``None`` when no safe bound
can be formed.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .expr import Expr, ExprLike, as_expr
from .intern import Memo

__all__ = [
    "Bounds",
    "BoundsEnv",
    "bounds_of",
    "freeze_bounds_env",
    "try_sign",
    "definitely_nonneg",
]

#: A pair of optional symbolic bounds (lower, upper); ``None`` = unknown.
Bounds = tuple[Optional[Expr], Optional[Expr]]

#: Known symbol ranges: name -> (lower, upper) expressions (inclusive).
BoundsEnv = Mapping[str, tuple[ExprLike, ExprLike]]


def _add(a: Optional[Expr], b: Optional[Expr]) -> Optional[Expr]:
    if a is None or b is None:
        return None
    return a + b


def _is_point(b: Bounds) -> bool:
    lo, hi = b
    return lo is not None and hi is not None and lo == hi


def _mul_bounds(b1: Bounds, b2: Bounds) -> Bounds:
    """Interval product; exact where operand signs are determinable."""
    # A constant point scales the other interval directly.
    for x, y in ((b1, b2), (b2, b1)):
        if _is_point(x) and x[0].is_constant():
            c = x[0].constant_value()
            lo, hi = y
            if c == 0:
                return (as_expr(0), as_expr(0))
            scaled_lo = None if lo is None else lo * c
            scaled_hi = None if hi is None else hi * c
            if c > 0:
                return (scaled_lo, scaled_hi)
            return (scaled_hi, scaled_lo)
    # Two symbolic points multiply to a point.
    if _is_point(b1) and _is_point(b2):
        product = b1[0] * b2[0]
        return (product, product)
    lo1, hi1 = b1
    lo2, hi2 = b2
    if any(v is None for v in (lo1, hi1, lo2, hi2)):
        return (None, None)
    # Both intervals provably within [0, +inf): monotone product.
    if (
        lo1.is_constant()
        and lo1.constant_value() >= 0
        and lo2.is_constant()
        and lo2.constant_value() >= 0
    ):
        return (lo1 * lo2, hi1 * hi2)
    if all(v.is_constant() for v in (lo1, hi1, lo2, hi2)):
        corners = [
            x.constant_value() * y.constant_value()
            for x in (lo1, hi1)
            for y in (lo2, hi2)
        ]
        return (as_expr(min(corners)), as_expr(max(corners)))
    return (None, None)


#: Memo for :func:`bounds_of`: (expr, frozen env) -> Bounds.  Range
#: queries dominate sign tests, which the Fourier-Motzkin elimination
#: issues for the same (expression, loop-range) pairs across every
#: simplification pass and cascade stage.
_BOUNDS_MEMO = Memo("symbolic.bounds_of", max_size=500_000)


def freeze_bounds_env(env: BoundsEnv) -> tuple:
    """A hashable canonical form of a symbol-range environment."""
    return tuple(
        sorted((name, as_expr(lo), as_expr(hi)) for name, (lo, hi) in env.items())
    )


def bounds_of(expr: ExprLike, env: BoundsEnv) -> Bounds:
    """Conservative symbolic bounds of *expr* under symbol ranges *env*.

    Works monomial by monomial.  A monomial's bounds are exact when each of
    its atoms either is a ranged symbol with a constant-sign coefficient or
    falls outside *env* (treated as an unknown -> ``(None, None)`` unless
    the whole monomial is that lone atom, in which case the atom itself is
    both bounds -- it is a symbolic constant as far as *env* goes).

    Memoized on the interned expression identity plus the frozen
    environment.
    """
    expr = as_expr(expr)
    key = (expr, freeze_bounds_env(env))
    cached = _BOUNDS_MEMO.get(key)
    if cached is not None:
        return cached
    return _BOUNDS_MEMO.put(key, _bounds_of(expr, env))


def _bounds_of(expr: Expr, env: BoundsEnv) -> Bounds:
    total_lo: Optional[Expr] = as_expr(0)
    total_hi: Optional[Expr] = as_expr(0)
    ranged = set(env.keys())
    for mono, coeff in expr.terms:
        mono_bounds: Bounds = (as_expr(1), as_expr(1))
        for atom, power in mono:
            syms = atom.free_symbols()
            from .expr import Sym

            if isinstance(atom, Sym) and atom.name in env:
                lo, hi = env[atom.name]
                atom_bounds: Bounds = (as_expr(lo), as_expr(hi))
            elif syms & ranged:
                # Atom entangles a ranged symbol opaquely (e.g. IA(i)).
                atom_bounds = (None, None)
            else:
                e = atom.as_expr()
                atom_bounds = (e, e)
            for _ in range(power):
                mono_bounds = _mul_bounds(mono_bounds, atom_bounds)
        lo, hi = mono_bounds
        if coeff >= 0:
            term_lo = None if lo is None else lo * coeff
            term_hi = None if hi is None else hi * coeff
        else:
            term_lo = None if hi is None else hi * coeff
            term_hi = None if lo is None else lo * coeff
        total_lo = _add(total_lo, term_lo)
        total_hi = _add(total_hi, term_hi)
    return (total_lo, total_hi)


def try_sign(expr: ExprLike, env: BoundsEnv = {}) -> Optional[str]:
    """Best-effort sign of *expr*: ``'+'``, ``'-'``, ``'0'`` or ``None``.

    ``'+'`` means provably ``> 0``; ``'-'`` provably ``< 0``; ``'0'``
    provably zero.  Symbols without a range entry are unconstrained.
    """
    expr = as_expr(expr)
    if expr.is_constant():
        v = expr.constant_value()
        return "0" if v == 0 else ("+" if v > 0 else "-")
    lo, hi = bounds_of(expr, env)
    if lo is not None and lo.is_constant() and lo.constant_value() > 0:
        return "+"
    if hi is not None and hi.is_constant() and hi.constant_value() < 0:
        return "-"
    if (
        lo is not None
        and hi is not None
        and lo == hi
        and lo.is_constant()
        and lo.constant_value() == 0
    ):
        return "0"
    return None


def definitely_nonneg(expr: ExprLike, env: BoundsEnv = {}) -> bool:
    """True when *expr* is provably ``>= 0`` under *env*."""
    expr = as_expr(expr)
    if expr.is_constant():
        return expr.constant_value() >= 0
    lo, _ = bounds_of(expr, env)
    return lo is not None and lo.is_constant() and lo.constant_value() >= 0
