"""Hash-consing and memoization infrastructure for the symbolic core.

Every layer of the analysis pipeline -- symbolic expressions, USR
summaries, predicate DAGs -- rebuilds structurally identical immutable
values over and over: the same loop is re-analyzed per array, the same
sub-predicates recur across cascade stages, and a full-suite evaluation
run touches each benchmark's expressions thousands of times.  This module
provides the two primitives that turn that redundancy into speed:

* :class:`Interner` -- a structural interning table.  Constructors route
  through it so that structurally equal values become pointer-equal,
  which makes ``__eq__`` an identity check on the hot path and makes
  every downstream memo table key cheap.
* :class:`Memo` -- a bounded memoization dictionary with hit/miss
  accounting.  All caches in the package register here, so
  :func:`clear_caches` can restore a cold-start state (used by the
  micro-benchmarks and the cache-correctness property tests) and
  :func:`cache_stats` can report effectiveness.

Both are intentionally simple dictionaries: under CPython's GIL the
individual get/put operations are atomic, so concurrent analysis threads
(see :mod:`repro.evaluation.batch`) at worst recompute a value, never
corrupt a table.  Caches are bounded by entry count; on overflow new
results are simply not stored (the table never evicts, matching the
access pattern of a batch run where early entries are the hottest).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

__all__ = [
    "Memo", "Interner", "register_cache", "unregister_cache",
    "clear_caches", "cache_stats",
]

#: Registry of every cache created in the package, by name.
_REGISTRY: Dict[str, "Memo"] = {}


class Memo:
    """A bounded memo table with hit/miss statistics.

    ``get``/``put`` are the raw operations used on hand-rolled hot paths;
    :meth:`memoize` wraps a zero-argument thunk for the common
    compute-if-absent pattern.
    """

    __slots__ = ("name", "max_size", "data", "hits", "misses")

    def __init__(self, name: str, max_size: int = 200_000):
        self.name = name
        self.max_size = max_size
        self.data: dict = {}
        self.hits = 0
        self.misses = 0
        register_cache(self)

    def get(self, key: Any) -> Optional[Any]:
        value = self.data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> Any:
        if len(self.data) < self.max_size:
            self.data[key] = value
        return value

    def memoize(self, key: Any, thunk: Callable[[], Any]) -> Any:
        cached = self.get(key)
        if cached is not None:
            return cached
        return self.put(key, thunk())

    def clear(self) -> None:
        self.data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.data)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "name": self.name,
            "entries": len(self.data),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


class Interner(Memo):
    """A structural interning table: ``intern(key, obj)`` returns the
    canonical instance for *key*, storing *obj* on first sight.

    Interned values are held strongly.  That is deliberate: the analysis
    working set (expressions and summary nodes of the benchmark suite) is
    small and maximally reused, and strong references keep identity
    stable across repeated full-suite runs -- which is what downstream
    identity-keyed memo tables rely on.
    """

    __slots__ = ()

    def intern(self, key: Any, obj: Any) -> Any:
        cached = self.data.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        return self.put(key, obj)


def register_cache(cache: Memo) -> Memo:
    """Add *cache* to the global registry (done by the constructors)."""
    _REGISTRY[cache.name] = cache
    return cache


def unregister_cache(cache: Memo) -> None:
    """Remove *cache* from the registry so it can be garbage-collected
    (used by short-lived cache owners, e.g. a retired serving engine).
    Only drops the exact instance registered under its name."""
    if _REGISTRY.get(cache.name) is cache:
        _REGISTRY.pop(cache.name, None)


def clear_caches(names: Optional[Iterable[str]] = None) -> None:
    """Empty every registered cache (or just *names*), restoring the
    cold-start state.  Interning tables are cleared too; identity-based
    fast paths degrade gracefully because all comparisons still fall back
    to structural equality."""
    # snapshot: unregister_cache() may run concurrently (engine retire
    # on a pool-shutdown thread) and must not break the iteration
    for name, cache in list(_REGISTRY.items()):
        if names is None or name in names:
            cache.clear()


def cache_stats() -> Dict[str, dict]:
    """Hit/miss/size statistics for every registered cache, by name."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}
