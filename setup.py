"""Packaging for the hybrid-analysis reproduction (src/ layout).

``pip install -e .`` makes ``import repro`` work without PYTHONPATH
hacks and installs the ``repro-eval`` console entry point (equivalent to
``python -m repro.evaluation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-hybrid-analysis",
    version="0.4.0",
    description=(
        "Reproduction of a hybrid static/dynamic automatic-parallelization "
        "framework: USR summaries, FACTOR predicate extraction, cascaded "
        "runtime tests, and the paper's evaluation harness."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],  # pure standard library at runtime
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-eval=repro.evaluation.cli:main",
        ],
    },
)
