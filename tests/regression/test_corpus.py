"""Replay every minimized fuzz repro in the regression corpus.

Each JSON document under ``corpus/`` is a program that once triggered an
``unsound`` or ``crash`` verdict in the differential oracle, minimized
by the shrinker and committed together with the fix.  Replaying it runs
the full three-way oracle again; the test fails if the guarded bug ever
comes back.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus_case, replay_corpus_case

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(CORPUS.glob("*.json"))


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_stays_fixed(path):
    entry = load_corpus_case(path)
    result = replay_corpus_case(entry, str(path))
    assert result.ok, result.message


def test_corpus_is_populated():
    """The corpus must never silently become uncollectable: at least the
    PR-2 seed-93 summarizer repro is committed."""
    assert any("seed93" in p.stem for p in CASES), (
        f"expected the seed93 repro in {CORPUS}"
    )
