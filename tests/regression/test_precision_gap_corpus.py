"""Replay of the harvested precision-gap corpus.

``precision_gap_corpus.json`` records every fuzz seed in the harvest
window whose loop the static/predicate/inspector cascade could not
validate even though the trace oracle saw no cross-iteration
dependence -- the precision gap the speculative backend exists to
close.  Replaying pins both halves of the claim per seed:

* the gap still exists: the sequential backend still classifies the
  seed as ``precision-gap`` (if the cascade learns to validate one of
  these, the harvest should be regenerated, not silently outgrown);
* speculation closes it as recorded: the speculative backend's verdict
  matches the harvested ``speculative_outcome`` (all ``sound-parallel``
  at harvest time).
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import generate_case
from repro.fuzz.oracle import run_case

CORPUS_PATH = Path(__file__).parent / "precision_gap_corpus.json"
CORPUS = json.loads(CORPUS_PATH.read_text())

#: Fast-path sample; the slow soak replays every harvested seed.
FAST_SAMPLE = 10


def _replay(entry):
    seed = entry["seed"]
    case = generate_case(seed)
    reference = run_case(case, backend="sequential")
    assert reference.outcome == entry["sequential_outcome"], (
        f"seed {seed}: cascade verdict drifted "
        f"({entry['sequential_outcome']} -> {reference.outcome}); "
        "regenerate the harvest"
    )
    speculative = run_case(case, backend="speculative", jobs=4)
    assert speculative.outcome == entry["speculative_outcome"], (
        f"seed {seed}: speculative verdict drifted "
        f"({entry['speculative_outcome']} -> {speculative.outcome})"
    )


def test_corpus_is_well_formed():
    assert CORPUS["seed_range"] == [0, 400]
    seeds = [e["seed"] for e in CORPUS["seeds"]]
    assert seeds, "harvest must not be empty"
    assert seeds == sorted(set(seeds)), "seeds must be unique and ordered"
    assert all(
        CORPUS["seed_range"][0] <= s < CORPUS["seed_range"][1] for s in seeds
    )
    for entry in CORPUS["seeds"]:
        assert entry["sequential_outcome"] == "precision-gap"
        assert entry["speculative_outcome"] == "sound-parallel"


@pytest.mark.parametrize(
    "entry",
    CORPUS["seeds"][:FAST_SAMPLE],
    ids=lambda e: f"seed{e['seed']}",
)
def test_gap_seed_flips_to_parallel(entry):
    _replay(entry)


@pytest.mark.slow
def test_full_corpus_replays():
    for entry in CORPUS["seeds"]:
        _replay(entry)
