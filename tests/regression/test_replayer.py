"""The corpus replayer itself is under test: a known-bad program placed
in a (temporary) corpus must be collected, executed and reported with
its seed and shrink provenance."""

import json

from repro.fuzz import load_corpus_case, replay_corpus_case
from repro.fuzz.shrink import CORPUS_SCHEMA

#: A program that the oracle must classify as a failure: the subscript
#: walks off the end of the declared array, so the interpreter (and
#: therefore the oracle) reports a crash -- the generator's bounds
#: guarantee makes any such crash a reportable bug.
_KNOWN_BAD = {
    "schema": CORPUS_SCHEMA,
    "seed": 424242,
    "label": "fuzz_loop",
    "exact_strategy": "inspector",
    "params": {"N": 5},
    "arrays": {"A": [0, 0, 0]},
    "source": (
        "program knownbad\n"
        "param N\n"
        "array A(3)\n"
        "main\n"
        "  do i = 1, N @ fuzz_loop\n"
        "    A[i] = i\n"
        "  end\n"
        "end\n"
        "end\n"
    ),
    "original_outcome": "crash",
    "original_detail": "interpreter: InterpError: A[4] out of bounds",
    "provenance": "hand-written replayer fixture (never shipped in corpus/)",
}


def _write(tmp_path):
    path = tmp_path / "seed424242-crash.json"
    path.write_text(json.dumps(_KNOWN_BAD))
    return path


def test_known_bad_program_is_reported_with_provenance(tmp_path):
    path = _write(tmp_path)
    entry = load_corpus_case(path)
    result = replay_corpus_case(entry, str(path))
    assert not result.ok
    assert result.outcome == "crash"
    # The report must carry enough to reproduce: seed + provenance +
    # the original verdict it was committed under.
    assert "424242" in result.message
    assert "hand-written replayer fixture" in result.message
    assert "originally crash" in result.message
    assert str(path) in result.message


def test_loader_roundtrips_inputs(tmp_path):
    path = _write(tmp_path)
    entry = load_corpus_case(path)
    assert entry.seed == 424242
    assert entry.params == {"N": 5}
    assert entry.arrays == {"A": [0, 0, 0]}
    case = entry.to_case()
    assert case.program.find_loop("fuzz_loop") is not None
    assert case.exact_strategy == "inspector"


def test_loader_rejects_unknown_schema(tmp_path):
    payload = dict(_KNOWN_BAD, schema=CORPUS_SCHEMA + 999)
    path = tmp_path / "bad-schema.json"
    path.write_text(json.dumps(payload))
    import pytest

    with pytest.raises(ValueError):
        load_corpus_case(path)
