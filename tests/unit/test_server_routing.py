"""Process-level routing: the consistent-hash ring promoted from
threads to backends, and hot-shard detection."""

import hashlib

import pytest

from repro.server import EnginePool, HotShardTracker, Router
from repro.api import EngineConfig


def _digests(count, salt=""):
    return [
        hashlib.sha256(f"{salt}{i}".encode()).hexdigest()[:16]
        for i in range(count)
    ]


class TestRouter:
    def test_rejects_zero_backends(self):
        with pytest.raises(ValueError):
            Router(0)

    def test_primary_matches_thread_pool_sharding(self):
        """The process-level ring is the thread-level ring promoted one
        level up: same digest, same width, same owner."""
        pool = EnginePool(
            workers=4, engine_config=EngineConfig(use_disk_cache=False)
        )
        router = Router(4)
        for digest in _digests(200):
            assert router.primary(digest) == pool.shard_for(digest)

    def test_primary_is_deterministic_across_instances(self):
        a, b = Router(5), Router(5)
        for digest in _digests(100):
            assert a.primary(digest) == b.primary(digest)

    def test_successors_enumerate_every_backend_once(self):
        router = Router(6)
        for digest in _digests(50):
            walk = list(router.successors(digest))
            assert sorted(walk) == list(range(6))

    def test_replicas_deterministic_distinct_primary_first(self):
        router = Router(8)
        for digest in _digests(100):
            replicas = router.replicas(digest, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == router.primary(digest)
            assert replicas == router.replicas(digest, 3)  # stable

    def test_replicas_clamped_to_backend_count(self):
        router = Router(3)
        assert sorted(router.replicas(_digests(1)[0], 10)) == [0, 1, 2]

    def test_replica_sets_nest_as_width_grows(self):
        """R replicas are a prefix of R+1 replicas: widening fan-out
        never reassigns existing replica traffic."""
        router = Router(8)
        for digest in _digests(60):
            assert router.replicas(digest, 4)[:2] == router.replicas(digest, 2)

    def test_route_prefers_primary_when_live(self):
        router = Router(4)
        live = frozenset(range(4))
        for digest in _digests(100):
            assert router.route(digest, live) == router.primary(digest)

    def test_route_returns_none_with_no_live_backend(self):
        router = Router(4)
        assert router.route(_digests(1)[0], frozenset()) is None

    def test_backend_leave_moves_only_its_keys(self):
        """Bounded key movement: when backend k dies, digests owned by
        other backends keep their assignment."""
        router = Router(5)
        everyone = frozenset(range(5))
        digests = _digests(400)
        before = {d: router.route(d, everyone) for d in digests}
        for dead in range(5):
            after_set = everyone - {dead}
            for digest in digests:
                moved_to = router.route(digest, after_set)
                if before[digest] != dead:
                    assert moved_to == before[digest]
                else:
                    assert moved_to != dead

    def test_backend_rejoin_restores_exact_assignment(self):
        router = Router(5)
        everyone = frozenset(range(5))
        digests = _digests(200)
        before = {d: router.route(d, everyone) for d in digests}
        _ = {d: router.route(d, everyone - {2}) for d in digests}
        after = {d: router.route(d, everyone) for d in digests}
        assert before == after

    def test_ring_growth_moves_bounded_fraction(self):
        """Adding a backend to the ring moves roughly 1/N of the keys
        (the consistent-hashing contract), never a wholesale reshuffle."""
        small, large = Router(4), Router(5)
        digests = _digests(2000)
        moved = sum(
            1 for d in digests if small.primary(d) != large.primary(d)
        )
        # expectation is 1/5 = 20%; generous headroom for ring variance
        assert moved / len(digests) < 0.35
        # every moved key went to the new backend, not between old ones
        for digest in digests:
            if small.primary(digest) != large.primary(digest):
                assert large.primary(digest) == 4


class TestHotShardTracker:
    def make(self, **kwargs):
        clock = {"now": 0.0}
        kwargs.setdefault("window_s", 1.0)
        kwargs.setdefault("hot_rps", 10.0)
        tracker = HotShardTracker(clock=lambda: clock["now"], **kwargs)
        return tracker, clock

    def test_validation(self):
        with pytest.raises(ValueError):
            HotShardTracker(window_s=0)
        with pytest.raises(ValueError):
            HotShardTracker(hot_rps=0)

    def test_cold_digest_is_not_hot(self):
        tracker, _ = self.make()
        assert not tracker.is_hot("abc")
        assert tracker.rate("abc") == 0.0

    def test_sustained_rate_crosses_threshold(self):
        tracker, clock = self.make()
        for i in range(20):
            clock["now"] = i * 0.05  # 20 requests over 1s
            tracker.observe("hot")
        assert tracker.rate("hot") >= 10.0
        assert tracker.is_hot("hot")
        assert "hot" in tracker.hot_digests()

    def test_rate_decays_after_traffic_stops(self):
        tracker, clock = self.make()
        for i in range(20):
            clock["now"] = i * 0.05
            tracker.observe("hot")
        clock["now"] = 3.5  # idle > 2 windows: everything expired
        assert tracker.rate("hot") == 0.0
        assert not tracker.is_hot("hot")

    def test_sliding_window_blends_previous_bucket(self):
        tracker, clock = self.make()
        for _ in range(10):
            tracker.observe("d")  # all at t=0, current bucket
        clock["now"] = 1.5  # halfway into the next window
        # window slid: previous bucket contributes half its weight
        assert tracker.rate("d") == pytest.approx(5.0)

    def test_max_tracked_bounds_memory_but_keeps_known_digests(self):
        tracker, clock = self.make(max_tracked=2)
        tracker.observe("a")
        tracker.observe("b")
        tracker.observe("c")  # over the bound: not tracked
        tracker.observe("a")  # still tracked: counted
        assert tracker.rate("a") == pytest.approx(2.0)
        assert tracker.rate("c") == 0.0

    def test_hot_digests_snapshot_is_internally_consistent(self):
        # regression: hot_digests used to re-read the clock (and
        # potentially re-rotate) per digest, so two digests with equal
        # counts could report different rates -- or straddle a window
        # rotation mid-iteration -- within one snapshot
        ticks = {"now": 0.0, "advance": 0.0}

        def clock():
            value = ticks["now"]
            ticks["now"] += ticks["advance"]
            return value

        tracker = HotShardTracker(window_s=1.0, hot_rps=0.5, clock=clock)
        for _ in range(10):
            tracker.observe("a")
            tracker.observe("b")
        # move 0.2s into the next window: both digests sit in the
        # previous bucket at weight 0.8 -> 8 rps each
        ticks["now"] = 1.2
        # from here every clock read advances time by half a second;
        # a per-digest re-read would blend different weights per digest
        ticks["advance"] = 0.5
        rates = tracker.hot_digests()
        assert set(rates) == {"a", "b"}
        assert rates["a"] == rates["b"] == pytest.approx(8.0)

    def test_snapshot_is_json_safe_and_stable(self):
        tracker, clock = self.make()
        for i in range(30):
            clock["now"] = i * 0.02
            tracker.observe("hot")
        snapshot = tracker.snapshot()
        assert set(snapshot) == {
            "hot_digests", "hot_rps_threshold", "max_rate", "tracked",
            "window_s",
        }
        assert snapshot["hot_digests"] == 1
        assert snapshot["max_rate"] >= 10.0
