"""The streaming layer's pure pieces and the Subscription pacing.

Frame bodies are pure functions of two ring samples, so they are pinned
here without a socket; the Subscription's pacing/stop/ack behavior runs
on a private event loop with zero-interval stand-ins.
"""

import asyncio

import pytest

from repro.api import MetricsFrame, UnsubscribeResponse
from repro.server import ServerMetrics
from repro.server.stream import (
    MAX_INTERVAL_S,
    MIN_INTERVAL_S,
    Subscription,
    build_stream_body,
    clamp_interval,
    history_entry,
)

STREAM_KEYS = {
    "counters", "gauges", "hot_shards", "latency", "topology", "uptime_s",
}


def _samples():
    metrics = ServerMetrics()
    metrics.request_received("analyze")
    metrics.request_admitted()
    before = metrics.sample(gauges={"queue_depth": [0]})
    metrics.request_completed(0.003)
    metrics.request_received("execute")
    metrics.shed()
    after = metrics.sample(gauges={"queue_depth": [2]})
    return before, after


class TestFrameBody:
    def test_clamp_interval(self):
        assert clamp_interval(0.0) == MIN_INTERVAL_S
        assert clamp_interval(1e9) == MAX_INTERVAL_S
        assert clamp_interval(0.25) == 0.25

    def test_schema_and_counter_deltas(self):
        before, after = _samples()
        body = build_stream_body(before, after, "threads")
        assert set(body) == STREAM_KEYS
        assert body["topology"] == "threads"
        assert body["hot_shards"] is None  # threads tier: key present
        assert body["counters"]["completed"] == 1
        assert body["counters"]["shed"] == 1
        assert body["counters"]["requests"]["execute"] == 1
        assert body["counters"]["requests"]["analyze"] == 0
        assert body["counters"]["errors"]["overloaded"] == 1
        # gauges are levels, not deltas
        assert body["gauges"]["inflight"] == 0
        assert body["gauges"]["queue_depth"] == [2]
        assert "inflight" not in body["counters"]

    def test_latency_deltas_are_sparse(self):
        before, after = _samples()
        latency = build_stream_body(before, after, "threads")["latency"]
        assert latency["count"] == 1
        assert sum(latency["buckets"].values()) == 1
        assert latency["invalid"] == 0
        assert latency["sum_s"] == pytest.approx(0.003)

    def test_self_diff_is_all_zero(self):
        _, sample = _samples()
        body = build_stream_body(sample, sample, "threads")
        assert body["counters"]["completed"] == 0
        assert body["latency"]["count"] == 0
        assert body["latency"]["buckets"] == {}

    def test_hot_shards_pass_through(self):
        metrics = ServerMetrics()
        sample = metrics.sample(extra={"hot_shards": {"hot_digests": 2}})
        body = build_stream_body(sample, sample, "multiproc")
        assert body["hot_shards"] == {"hot_digests": 2}

    def test_history_entry_is_compact(self):
        _, sample = _samples()
        entry = history_entry(sample)
        assert set(entry) == {
            "completed", "errors", "gauges", "inflight", "seq", "shed",
            "uptime_s",
        }
        assert entry["shed"] == 1
        assert entry["errors"] == 1


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def _collect(subscription):
    frames = []
    async for frame in subscription.frames():
        frames.append(frame)
    return frames


class TestSubscription:
    def test_frame_budget_and_seq(self):
        async def scenario():
            metrics = ServerMetrics()
            subscription = Subscription(
                metrics.sample, "threads", interval_s=0.0, frames=3,
            )
            frames = await _collect(subscription)
            return subscription, frames

        subscription, frames = _run(scenario())
        assert [f.seq for f in frames] == [0, 1, 2]
        assert [f.final for f in frames] == [False, False, True]
        assert all(isinstance(f, MetricsFrame) for f in frames)
        assert subscription.finished
        ack = subscription.ack().result()
        assert ack == UnsubscribeResponse(frames=3)

    def test_first_frame_is_immediate_with_history(self):
        async def scenario():
            metrics = ServerMetrics()
            for _ in range(5):
                metrics.sample()
            subscription = Subscription(
                metrics.sample, "threads", frames=1, history=3,
                recent_fn=metrics.recent_samples,
            )
            return await _collect(subscription)

        frames = _run(scenario())
        assert len(frames) == 1
        first = frames[0]
        assert first.final and first.elapsed_s == 0.0
        assert len(first.history) == 3
        # the stream's own first sample (seq 5) is the newest entry
        assert [h["seq"] for h in first.history] == [3, 4, 5]
        # first frame deltas are zero by construction
        assert first.stream["counters"]["completed"] == 0

    def test_stop_ends_stream_with_final_frame(self):
        async def scenario():
            metrics = ServerMetrics()
            subscription = Subscription(
                metrics.sample, "threads", interval_s=60.0,
            )
            collector = asyncio.ensure_future(_collect(subscription))
            await asyncio.sleep(0.05)  # first frame emitted, now pacing
            subscription.stop()
            frames = await asyncio.wait_for(collector, timeout=5)
            ack = await asyncio.wait_for(subscription.ack(), timeout=5)
            return frames, ack

        frames, ack = _run(scenario())
        # the 60s interval did not delay shutdown: stop() woke it
        assert frames[-1].final
        assert ack.frames == len(frames)

    def test_interval_is_clamped(self):
        async def scenario():
            return Subscription(ServerMetrics().sample, "threads",
                                interval_s=1e9)

        subscription = _run(scenario())
        assert subscription.interval_s == MAX_INTERVAL_S
