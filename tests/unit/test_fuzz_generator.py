"""Unit tests for the fuzz generator: determinism, renderer round-trip,
and the runtime-safety (in-bounds) guarantee."""

import copy

import pytest

from repro.fuzz import GeneratorConfig, generate_case
from repro.fuzz.generator import render_expr, render_program, render_stmt
from repro.ir import Machine, parse_program
from repro.ir.ast import (
    ArrayRead,
    AssignArray,
    BinOp,
    Do,
    If,
    Intrinsic,
    Num,
    UnaryOp,
    Var,
    While,
)

SEEDS = range(40)


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in SEEDS:
            a = generate_case(seed)
            b = generate_case(seed)
            assert a.source == b.source
            assert a.params == b.params
            assert a.arrays == b.arrays
            assert a.exact_strategy == b.exact_strategy

    def test_different_seeds_differ(self):
        sources = {generate_case(seed).source for seed in SEEDS}
        assert len(sources) > len(SEEDS) // 2

    def test_config_digest_covers_every_knob(self):
        base = GeneratorConfig()
        for name in base.__dataclass_fields__:
            assert f"{name}=" in base.digest_text()


class TestRenderRoundTrip:
    def test_program_reparses_identically(self):
        for seed in SEEDS:
            case = generate_case(seed)
            reparsed = parse_program(case.source)
            assert render_program(reparsed) == case.source

    def test_case_program_is_the_reparse(self):
        # The parser is the component that marks reduction updates; the
        # case must hold the parsed program, not the raw generated AST.
        case = generate_case(7)
        again = case.reparsed()
        assert render_program(again.program) == case.source

    def test_negative_literal_renders_parseable(self):
        assert render_expr(Num(-5)) == "(0 - 5)"
        from repro.ir import parse_expression

        parsed = parse_expression(render_expr(Num(-5)))
        assert parsed == BinOp("-", Num(0), Num(5))

    def test_expr_forms(self):
        assert render_expr(UnaryOp("not", Var("x"))) == "(not x)"
        assert render_expr(Intrinsic("min", (Num(1), Var("y")))) == "min(1, y)"
        assert render_expr(ArrayRead("A", Var("i"))) == "A[i]"

    def test_stmt_forms(self):
        do = Do("i", Num(1), Num(3), (AssignArray("A", Var("i"), Num(0)),), "l")
        lines = render_stmt(do)
        assert lines[0] == "do i = 1, 3 @ l"
        w = While(BinOp("<", Var("i"), Num(5)), (), None)
        assert render_stmt(w)[0] == "while (i < 5)"
        cond = If(BinOp("==", Var("i"), Num(2)), (AssignArray("A", Num(1), Num(0)),))
        assert render_stmt(cond)[0] == "if (i == 2) then"


class TestRuntimeSafety:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_programs_execute_in_bounds(self, seed):
        """The central generator invariant: sequential execution never
        faults, so any pipeline crash on a generated program is a
        pipeline bug."""
        case = generate_case(seed)
        machine = Machine(
            case.program,
            params=case.params,
            arrays=copy.deepcopy(case.arrays),
            trace_label=case.label,
        )
        result = machine.run()  # must not raise
        assert result.trace is not None

    def test_target_loop_always_present(self):
        for seed in SEEDS:
            case = generate_case(seed)
            assert case.program.find_loop("fuzz_loop") is not None

    def test_arrays_cover_declared_sizes(self):
        for seed in SEEDS:
            case = generate_case(seed)
            for decl in case.program.arrays:
                assert len(case.arrays[decl.name]) == decl.size.value
