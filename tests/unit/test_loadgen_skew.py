"""Skewed load generation: the zipf sampler and the multiplexed
closed loop's knobs."""

import random
from collections import Counter

import pytest

from repro.server import ZipfSampler, build_mix, make_request
from repro.server.loadgen import MAX_MULTIPLEX, run_load


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(4, s=0)

    def test_deterministic_for_seed(self):
        a = [ZipfSampler(16, 1.2).sample(random.Random(7)) for _ in range(1)]
        sampler = ZipfSampler(16, 1.2)
        stream1 = [sampler.sample(random.Random(7)) for _ in range(1)]
        rng1, rng2 = random.Random(42), random.Random(42)
        s1 = [sampler.sample(rng1) for _ in range(500)]
        s2 = [ZipfSampler(16, 1.2).sample(rng2) for _ in range(500)]
        assert s1 == s2
        assert a == stream1

    def test_rank_one_dominates_and_order_is_monotone(self):
        sampler = ZipfSampler(32, 1.2)
        rng = random.Random(0)
        counts = Counter(sampler.sample(rng) for _ in range(20_000))
        assert counts.most_common(1)[0][0] == 0
        # expected share of rank 1 at s=1.2 over 32 ranks is ~25%
        assert counts[0] / 20_000 > 0.2
        assert counts[0] > counts[1] > counts[4]

    def test_share_sums_to_one_and_matches_rank_weights(self):
        sampler = ZipfSampler(8, 1.0)
        total = sum(sampler.share(i) for i in range(8))
        assert total == pytest.approx(1.0)
        assert sampler.share(0) == pytest.approx(2 * sampler.share(1))

    def test_samples_cover_only_valid_indices(self):
        sampler = ZipfSampler(5, 2.0)
        rng = random.Random(1)
        assert set(sampler.sample(rng) for _ in range(2000)) <= set(range(5))


class TestSkewedRequests:
    def test_make_request_with_sampler_is_deterministic(self):
        mix = build_mix(0, programs=8)
        sampler = ZipfSampler(len(mix), 1.3)
        first = [
            make_request(random.Random(9), mix, 0.9, sampler).to_json()
            for _ in range(1)
        ]
        second = [
            make_request(random.Random(9), mix, 0.9, sampler).to_json()
            for _ in range(1)
        ]
        assert first == second

    def test_skewed_stream_prefers_head_of_mix(self):
        mix = build_mix(0, programs=16)
        sampler = ZipfSampler(len(mix), 1.5)
        rng = random.Random(3)
        sources = Counter(
            make_request(rng, mix, 1.0, sampler).source for _ in range(2000)
        )
        assert sources.most_common(1)[0][0] == mix[0].source


class TestRunLoadValidation:
    def test_rejects_unknown_skew(self):
        with pytest.raises(ValueError, match="skew"):
            run_load("127.0.0.1", 1, skew="pareto")

    def test_rejects_multiplex_out_of_bounds(self):
        with pytest.raises(ValueError, match="multiplex"):
            run_load("127.0.0.1", 1, multiplex=0)
        with pytest.raises(ValueError, match="multiplex"):
            run_load("127.0.0.1", 1, multiplex=MAX_MULTIPLEX + 1)

    def test_rejects_multiplex_in_open_mode(self):
        with pytest.raises(ValueError, match="closed"):
            run_load("127.0.0.1", 1, mode="open", rate=10.0, multiplex=4)
