"""Dispatcher admission control: coalescing, shedding, error mapping.

The deterministic trick: a pool that has not been started yet queues
work without serving it, so in-flight state can be arranged exactly;
start() then drains everything.
"""

import pytest

from repro.api import (
    AnalyzeRequest,
    AnalyzeResponse,
    EngineConfig,
    ErrorResponse,
    ExecuteRequest,
)
from repro.server import Dispatcher, EnginePool

SOURCE = """
program dispatch_test
param N
array A(100), B(100)

main
  do i = 1, N @ copy
    A[i] = B[i] + 1
  end
end
"""

OTHER = SOURCE.replace("B[i] + 1", "B[i] + 2").replace(
    "program dispatch_test", "program dispatch_other"
)


def _pool(**kwargs):
    kwargs.setdefault("engine_config", EngineConfig(use_disk_cache=False))
    return EnginePool(**kwargs)


class TestCoalescing:
    def test_identical_inflight_analyzes_coalesce(self):
        pool = _pool(workers=1, queue_depth=16)
        dispatcher = Dispatcher(pool)
        request = AnalyzeRequest(source=SOURCE, loop="copy")
        futures = [dispatcher.submit(request) for _ in range(5)]
        # one unit of queued work, four riders
        assert pool.queue_size(0) == 1
        assert pool.metrics.snapshot()["coalesced"] == 4
        pool.start()
        texts = {f.result(timeout=60).canonical_text() for f in futures}
        assert len(texts) == 1
        assert all(
            isinstance(f.result(), AnalyzeResponse) for f in futures
        )
        pool.stop()

    def test_different_options_do_not_coalesce(self):
        pool = _pool(workers=1, queue_depth=16)
        dispatcher = Dispatcher(pool)
        dispatcher.submit(AnalyzeRequest(source=SOURCE, loop="copy"))
        dispatcher.submit(
            AnalyzeRequest(source=SOURCE, loop="copy", options={"size_cap": 99})
        )
        assert pool.queue_size(0) == 2
        assert pool.metrics.snapshot()["coalesced"] == 0
        pool.start()
        pool.stop()

    def test_executes_never_coalesce(self):
        pool = _pool(workers=1, queue_depth=16)
        dispatcher = Dispatcher(pool)
        request = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 4})
        dispatcher.submit(request)
        dispatcher.submit(request)
        assert pool.queue_size(0) == 2
        pool.start()
        pool.stop()

    def test_coalescing_resets_after_completion(self):
        pool = _pool(workers=1, queue_depth=16).start()
        dispatcher = Dispatcher(pool)
        request = AnalyzeRequest(source=SOURCE, loop="copy")
        first = dispatcher.submit(request)
        first.result(timeout=60)
        # in-flight table must be empty again; a new request is primary
        assert not dispatcher._inflight_analyze
        second = dispatcher.submit(request)
        assert second.result(timeout=60).canonical_text() == \
            first.result().canonical_text()
        pool.stop()


class TestShedding:
    def test_queue_full_sheds_with_typed_error(self):
        pool = _pool(workers=1, queue_depth=2)
        dispatcher = Dispatcher(pool, max_inflight=100)
        a = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        b = ExecuteRequest(source=OTHER, loop="copy", params={"N": 2})
        dispatcher.submit(a)
        dispatcher.submit(b)
        shed = dispatcher.submit(a).result(timeout=5)
        assert isinstance(shed, ErrorResponse)
        assert shed.code == "overloaded"
        assert shed.retryable is True
        snapshot = pool.metrics.snapshot()
        assert snapshot["shed"] == 1
        # the microsecond shed fast-path must not pollute the latency
        # histogram (it only measures requests that reached the pool)
        assert snapshot["latency"]["count"] == 0
        pool.start()
        pool.stop()

    def test_max_inflight_budget_sheds(self):
        pool = _pool(workers=2, queue_depth=100)
        dispatcher = Dispatcher(pool, max_inflight=2)
        a = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        b = ExecuteRequest(source=OTHER, loop="copy", params={"N": 2})
        assert not dispatcher.submit(a).done()
        assert not dispatcher.submit(b).done()
        shed = dispatcher.submit(a).result(timeout=5)
        assert shed.code == "overloaded"
        pool.start()
        pool.stop()

    def test_budget_frees_after_completion(self):
        pool = _pool(workers=1, queue_depth=10).start()
        dispatcher = Dispatcher(pool, max_inflight=1)
        request = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        first = dispatcher.submit(request)
        first.result(timeout=60)
        assert dispatcher.inflight() == 0
        second = dispatcher.submit(request)
        result = second.result(timeout=60)
        assert not isinstance(result, ErrorResponse)
        pool.stop()


class TestErrorMapping:
    def test_unknown_loop_is_bad_request(self):
        pool = _pool(workers=1).start()
        dispatcher = Dispatcher(pool)
        response = dispatcher.submit(
            AnalyzeRequest(source=SOURCE, loop="no_such_loop")
        ).result(timeout=60)
        assert isinstance(response, ErrorResponse)
        assert response.code == "bad_request"
        assert response.retryable is False
        pool.stop()

    def test_parse_failure_is_bad_request(self):
        pool = _pool(workers=1).start()
        dispatcher = Dispatcher(pool)
        response = dispatcher.submit(
            AnalyzeRequest(source="this is not a program", loop="L")
        ).result(timeout=60)
        assert isinstance(response, ErrorResponse)
        assert response.code == "bad_request"
        pool.stop()

    def test_non_request_is_bad_request(self):
        pool = _pool(workers=1)
        dispatcher = Dispatcher(pool)
        response = dispatcher.submit("not a request").result(timeout=5)
        assert response.code == "bad_request"
        pool.stop()

    def test_pool_shutdown_maps_to_overloaded(self):
        pool = _pool(workers=1)  # never started
        dispatcher = Dispatcher(pool)
        future = dispatcher.submit(
            ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        )
        pool.stop(drain=False)
        response = future.result(timeout=5)
        assert isinstance(response, ErrorResponse)
        assert response.code == "overloaded"
        assert response.retryable is True

    def test_stop_under_load_does_not_deadlock(self):
        """stop(drain=True) racing submit() with a full worker inbox
        must terminate (regression: a lock cycle between the pool lock,
        the bounded inbox and the dispatcher lock hung forever)."""
        import threading

        slow = (
            "program slow\n"
            "param N, M\n"
            "array S(50), W(500)\n"
            "\n"
            "main\n"
            "  do i = 1, N @ copy\n"
            "    do j = 1, M\n"
            "      S[i] = S[i] + (W[j] * i)\n"
            "    end\n"
            "  end\n"
            "end\n"
        )
        pool = _pool(workers=1, queue_depth=1).start()
        dispatcher = Dispatcher(pool, max_inflight=100)
        running = ExecuteRequest(source=slow, loop="copy",
                                 params={"N": 40, "M": 400})
        queued = ExecuteRequest(source=OTHER, loop="copy", params={"N": 2})
        first = dispatcher.submit(running)   # worker picks this up
        second = dispatcher.submit(queued)   # fills the depth-1 inbox

        def racing_submit():
            dispatcher.submit(
                ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
            ).result(timeout=60)

        stopper = threading.Thread(target=pool.stop, daemon=True)
        racer = threading.Thread(target=racing_submit, daemon=True)
        stopper.start()
        racer.start()
        stopper.join(timeout=60)
        racer.join(timeout=60)
        assert not stopper.is_alive(), "pool.stop() deadlocked"
        assert not racer.is_alive(), "dispatcher.submit() deadlocked"
        assert first.result(timeout=5) is not None
        assert second.result(timeout=5) is not None
