"""Dispatcher admission control: coalescing, shedding, error mapping.

The deterministic trick: a pool that has not been started yet queues
work without serving it, so in-flight state can be arranged exactly;
start() then drains everything.
"""

import pytest

from repro.api import (
    AnalyzeRequest,
    AnalyzeResponse,
    EngineConfig,
    ErrorResponse,
    ExecuteRequest,
)
from repro.server import Dispatcher, EnginePool

SOURCE = """
program dispatch_test
param N
array A(100), B(100)

main
  do i = 1, N @ copy
    A[i] = B[i] + 1
  end
end
"""

OTHER = SOURCE.replace("B[i] + 1", "B[i] + 2").replace(
    "program dispatch_test", "program dispatch_other"
)


def _pool(**kwargs):
    kwargs.setdefault("engine_config", EngineConfig(use_disk_cache=False))
    return EnginePool(**kwargs)


class TestCoalescing:
    def test_identical_inflight_analyzes_coalesce(self):
        pool = _pool(workers=1, queue_depth=16)
        dispatcher = Dispatcher(pool)
        request = AnalyzeRequest(source=SOURCE, loop="copy")
        futures = [dispatcher.submit(request) for _ in range(5)]
        # one unit of queued work, four riders
        assert pool.queue_size(0) == 1
        assert pool.metrics.snapshot()["coalesced"] == 4
        pool.start()
        texts = {f.result(timeout=60).canonical_text() for f in futures}
        assert len(texts) == 1
        assert all(
            isinstance(f.result(), AnalyzeResponse) for f in futures
        )
        pool.stop()

    def test_different_options_do_not_coalesce(self):
        pool = _pool(workers=1, queue_depth=16)
        dispatcher = Dispatcher(pool)
        dispatcher.submit(AnalyzeRequest(source=SOURCE, loop="copy"))
        dispatcher.submit(
            AnalyzeRequest(source=SOURCE, loop="copy", options={"size_cap": 99})
        )
        assert pool.queue_size(0) == 2
        assert pool.metrics.snapshot()["coalesced"] == 0
        pool.start()
        pool.stop()

    def test_executes_never_coalesce(self):
        pool = _pool(workers=1, queue_depth=16)
        dispatcher = Dispatcher(pool)
        request = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 4})
        dispatcher.submit(request)
        dispatcher.submit(request)
        assert pool.queue_size(0) == 2
        pool.start()
        pool.stop()

    def test_coalescing_resets_after_completion(self):
        pool = _pool(workers=1, queue_depth=16).start()
        dispatcher = Dispatcher(pool)
        request = AnalyzeRequest(source=SOURCE, loop="copy")
        first = dispatcher.submit(request)
        first.result(timeout=60)
        # in-flight table must be empty again; a new request is primary
        assert not dispatcher._inflight_analyze
        second = dispatcher.submit(request)
        assert second.result(timeout=60).canonical_text() == \
            first.result().canonical_text()
        pool.stop()


class TestShedding:
    def test_queue_full_sheds_with_typed_error(self):
        pool = _pool(workers=1, queue_depth=2)
        dispatcher = Dispatcher(pool, max_inflight=100)
        a = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        b = ExecuteRequest(source=OTHER, loop="copy", params={"N": 2})
        dispatcher.submit(a)
        dispatcher.submit(b)
        shed = dispatcher.submit(a).result(timeout=5)
        assert isinstance(shed, ErrorResponse)
        assert shed.code == "overloaded"
        assert shed.retryable is True
        snapshot = pool.metrics.snapshot()
        assert snapshot["shed"] == 1
        # the microsecond shed fast-path must not pollute the latency
        # histogram (it only measures requests that reached the pool)
        assert snapshot["latency"]["count"] == 0
        pool.start()
        pool.stop()

    def test_max_inflight_budget_sheds(self):
        pool = _pool(workers=2, queue_depth=100)
        dispatcher = Dispatcher(pool, max_inflight=2)
        a = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        b = ExecuteRequest(source=OTHER, loop="copy", params={"N": 2})
        assert not dispatcher.submit(a).done()
        assert not dispatcher.submit(b).done()
        shed = dispatcher.submit(a).result(timeout=5)
        assert shed.code == "overloaded"
        pool.start()
        pool.stop()

    def test_budget_frees_after_completion(self):
        pool = _pool(workers=1, queue_depth=10).start()
        dispatcher = Dispatcher(pool, max_inflight=1)
        request = ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        first = dispatcher.submit(request)
        first.result(timeout=60)
        assert dispatcher.inflight() == 0
        second = dispatcher.submit(request)
        result = second.result(timeout=60)
        assert not isinstance(result, ErrorResponse)
        pool.stop()


class TestErrorMapping:
    def test_unknown_loop_is_bad_request(self):
        pool = _pool(workers=1).start()
        dispatcher = Dispatcher(pool)
        response = dispatcher.submit(
            AnalyzeRequest(source=SOURCE, loop="no_such_loop")
        ).result(timeout=60)
        assert isinstance(response, ErrorResponse)
        assert response.code == "bad_request"
        assert response.retryable is False
        pool.stop()

    def test_parse_failure_is_bad_request(self):
        pool = _pool(workers=1).start()
        dispatcher = Dispatcher(pool)
        response = dispatcher.submit(
            AnalyzeRequest(source="this is not a program", loop="L")
        ).result(timeout=60)
        assert isinstance(response, ErrorResponse)
        assert response.code == "bad_request"
        pool.stop()

    def test_non_request_is_bad_request(self):
        pool = _pool(workers=1)
        dispatcher = Dispatcher(pool)
        response = dispatcher.submit("not a request").result(timeout=5)
        assert response.code == "bad_request"
        pool.stop()

    def test_pool_shutdown_maps_to_overloaded(self):
        pool = _pool(workers=1)  # never started
        dispatcher = Dispatcher(pool)
        future = dispatcher.submit(
            ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
        )
        pool.stop(drain=False)
        response = future.result(timeout=5)
        assert isinstance(response, ErrorResponse)
        assert response.code == "overloaded"
        assert response.retryable is True

    def test_stop_under_load_does_not_deadlock(self):
        """stop(drain=True) racing submit() with a full worker inbox
        must terminate (regression: a lock cycle between the pool lock,
        the bounded inbox and the dispatcher lock hung forever)."""
        import threading

        slow = (
            "program slow\n"
            "param N, M\n"
            "array S(50), W(500)\n"
            "\n"
            "main\n"
            "  do i = 1, N @ copy\n"
            "    do j = 1, M\n"
            "      S[i] = S[i] + (W[j] * i)\n"
            "    end\n"
            "  end\n"
            "end\n"
        )
        pool = _pool(workers=1, queue_depth=1).start()
        dispatcher = Dispatcher(pool, max_inflight=100)
        running = ExecuteRequest(source=slow, loop="copy",
                                 params={"N": 40, "M": 400})
        queued = ExecuteRequest(source=OTHER, loop="copy", params={"N": 2})
        first = dispatcher.submit(running)   # worker picks this up
        second = dispatcher.submit(queued)   # fills the depth-1 inbox

        def racing_submit():
            dispatcher.submit(
                ExecuteRequest(source=SOURCE, loop="copy", params={"N": 2})
            ).result(timeout=60)

        stopper = threading.Thread(target=pool.stop, daemon=True)
        racer = threading.Thread(target=racing_submit, daemon=True)
        stopper.start()
        racer.start()
        stopper.join(timeout=60)
        racer.join(timeout=60)
        assert not stopper.is_alive(), "pool.stop() deadlocked"
        assert not racer.is_alive(), "dispatcher.submit() deadlocked"
        assert first.result(timeout=5) is not None
        assert second.result(timeout=5) is not None


class TestAdmissionController:
    """AIMD policy under an injected clock: pure, deterministic."""

    def make(self, base=16, **kwargs):
        from repro.server import AdmissionController

        clock = {"now": 0.0}
        kwargs.setdefault("sustain_s", 1.0)
        controller = AdmissionController(
            base, clock=lambda: clock["now"], **kwargs
        )
        return controller, clock

    def test_validation(self):
        from repro.server import AdmissionController

        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(16, decrease=1.0)
        with pytest.raises(ValueError):
            AdmissionController(16, low_utilization=0.9, high_utilization=0.5)

    def test_transient_spike_does_not_shrink(self):
        controller, clock = self.make(base=16)
        # saturated for less than sustain_s: budget holds
        assert controller.observe(100, 100, 0, 0) == 16
        clock["now"] = 0.5
        assert controller.observe(100, 100, 0, 0) == 16
        # the queue drains before the window elapses: pressure re-arms
        clock["now"] = 0.9
        assert controller.observe(0, 100, 0, 0) == 16
        clock["now"] = 1.5
        assert controller.observe(100, 100, 0, 0) == 16

    def test_sustained_pressure_halves_to_floor(self):
        controller, clock = self.make(base=16)
        budget = 16
        for tick in range(1, 40):
            clock["now"] = tick * 0.6
            budget = controller.observe(80, 100, budget, 5)
        assert budget == controller.floor == 2
        snap = controller.snapshot()
        assert snap["under_pressure"] is True
        assert snap["decreases"] >= 3

    def test_drained_and_bound_grows_additively_to_cap(self):
        controller, clock = self.make(base=16)
        # shrink first
        controller.observe(100, 100, 0, 0)
        clock["now"] = 1.2
        assert controller.observe(100, 100, 0, 1) == 8
        # drained + shedding: grow one step per tick
        clock["now"] = 2.0
        assert controller.observe(0, 100, 0, 1) == 10
        clock["now"] = 2.6
        assert controller.observe(0, 100, 0, 1) == 12
        # grow to cap, never beyond
        budget = 12
        for tick in range(200):
            clock["now"] = 3.0 + tick * 0.6
            budget = controller.observe(0, 100, budget, 1)
        assert budget == controller.cap == 64

    def test_idle_unbound_server_holds_budget(self):
        controller, clock = self.make(base=16)
        for tick in range(10):
            clock["now"] = tick * 0.6
            # empty queues, nothing in flight, no sheds: no probe
            assert controller.observe(0, 100, 0, 0) == 16
        assert controller.snapshot()["increases"] == 0

    def test_inflight_near_budget_counts_as_bound(self):
        controller, clock = self.make(base=16)
        # 75% of budget in flight is enough pressure to probe upward
        assert controller.observe(0, 100, 12, 0) == 18


class TestDispatcherAdapt:
    def test_static_dispatcher_adapt_is_noop(self):
        pool = _pool(workers=1)
        dispatcher = Dispatcher(pool, max_inflight=8)
        assert dispatcher.adapt(100, 100) == 8
        assert dispatcher.max_inflight == 8
        snap = dispatcher.admission_snapshot()
        assert snap == {
            "adaptive": False, "base_max_inflight": 8,
            "max_inflight": 8, "shed_total": 0,
        }
        pool.stop(drain=False)

    def test_adapt_applies_controller_budget(self):
        from repro.server import AdmissionController

        clock = {"now": 0.0}
        pool = _pool(workers=1)
        controller = AdmissionController(8, clock=lambda: clock["now"])
        dispatcher = Dispatcher(pool, max_inflight=8, controller=controller)
        assert dispatcher.adapt(10, 10) == 8  # pressure starts
        clock["now"] = 1.5
        assert dispatcher.adapt(10, 10) == 4  # sustained: halved
        assert dispatcher.max_inflight == 4
        snap = dispatcher.admission_snapshot()
        assert snap["adaptive"] is True
        assert snap["controller"]["budget"] == 4
        pool.stop(drain=False)

    def test_adaptive_sheds_less_than_static_under_recovery(self):
        """The acceptance scenario, deterministic: identical request
        schedules against a static and an adaptive dispatcher.  After
        an overload burst the queues drain; the adaptive budget grows
        back and admits later bursts the static budget keeps shedding.
        """
        from repro.server import AdmissionController

        def run(adaptive):
            clock = {"now": 0.0}
            pool = _pool(workers=1, queue_depth=64)  # never started:
            # queued work stays queued, so admission is the only actor
            controller = (
                AdmissionController(4, sustain_s=1.0,
                                    clock=lambda: clock["now"])
                if adaptive else None
            )
            dispatcher = Dispatcher(pool, max_inflight=4,
                                    controller=controller)
            request = ExecuteRequest(source=SOURCE, loop="copy",
                                     params={"N": 2})
            shed = 0
            for round_index in range(6):
                for _ in range(8):  # burst of 8 against budget 4
                    future = dispatcher.submit(request)
                    if future.done() and isinstance(
                        future.result(), ErrorResponse
                    ):
                        shed += 1
                # between bursts the workers catch up: simulate the
                # drain the sampler would observe (in-flight work
                # completes; queues empty)
                with dispatcher._lock:
                    dispatcher._inflight = 0
                clock["now"] = float(round_index + 1)
                dispatcher.adapt(0, 64)  # drained queue signal
            pool.stop(drain=False)
            return shed

        static_shed = run(adaptive=False)
        adaptive_shed = run(adaptive=True)
        # static: every round sheds 8 - 4 = 4.  adaptive: the drained-
        # while-shedding signal grows the budget (4 -> 5 -> 6 ...), so
        # later bursts shed strictly less.
        assert static_shed == 24
        assert adaptive_shed < static_shed
