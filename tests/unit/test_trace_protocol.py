"""Wire-schema stability of the protocol v7 tracing additions.

Two contracts: the additive ``trace`` field on analyze/execute rides
through serialize -> deserialize -> re-serialize byte-identically (and
its absence reads as untraced -- a v6 document body is still a valid
v7 body), and the ``trace`` verb's request/response documents follow
the same canonical-roundtrip discipline as every other verb.
"""

import json

import pytest

from repro.api import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    ExecuteRequest,
    TraceRequest,
    TraceResponse,
    request_from_json,
    response_from_json,
)

SOURCE = """
program trace_protocol
param N
array A(10)

main
  do i = 1, N @ target
    A[i] = A[i] + 1
  end
end
"""

CONTEXT = {"trace_id": "a" * 32, "parent_span_id": "b" * 16, "sampled": True}


def _roundtrip(document_text, reader):
    payload = json.loads(document_text)
    return reader(payload).canonical_text()


class TestProtocolVersion:
    def test_tracing_ships_in_version_seven(self):
        assert PROTOCOL_VERSION == 7


class TestTraceFieldOnRequests:
    def test_analyze_trace_roundtrips_byte_identically(self):
        request = AnalyzeRequest(source=SOURCE, loop="target", trace=CONTEXT)
        text = request.canonical_text()
        assert _roundtrip(text, AnalyzeRequest.from_json) == text
        assert _roundtrip(text, request_from_json) == text
        again = request_from_json(json.loads(text))
        assert again.trace == CONTEXT

    def test_execute_trace_roundtrips_byte_identically(self):
        request = ExecuteRequest(
            source=SOURCE, loop="target", params={"N": 4},
            arrays={"A": [0] * 10}, trace=CONTEXT,
        )
        text = request.canonical_text()
        assert _roundtrip(text, ExecuteRequest.from_json) == text
        assert request_from_json(json.loads(text)).trace == CONTEXT

    def test_absent_trace_reads_as_untraced(self):
        # additive tolerance: a v6-shaped body (no trace key at all)
        # must decode under v7 exactly as an explicit null does
        payload = AnalyzeRequest(source=SOURCE, loop="target").to_json()
        assert payload["trace"] is None
        del payload["trace"]
        assert request_from_json(payload).trace is None

    def test_non_object_trace_rejected(self):
        payload = AnalyzeRequest(source=SOURCE, loop="target").to_json()
        payload["trace"] = "not-a-context"
        with pytest.raises(ValueError, match="'trace' must be a JSON object"):
            request_from_json(payload)

    def test_trace_is_copied_not_aliased(self):
        context = dict(CONTEXT)
        request = AnalyzeRequest(source=SOURCE, loop="target", trace=context)
        request.to_json()["trace"]["sampled"] = False
        assert context["sampled"] is True


class TestTraceVerb:
    def test_request_roundtrip_and_dispatch(self):
        request = TraceRequest(trace_id="c" * 32, limit=25, status="error")
        text = request.canonical_text()
        assert _roundtrip(text, TraceRequest.from_json) == text
        decoded = request_from_json(json.loads(text))
        assert isinstance(decoded, TraceRequest)
        assert decoded.trace_id == "c" * 32
        assert decoded.limit == 25
        assert decoded.status == "error"

    def test_request_defaults(self):
        decoded = TraceRequest.from_json(
            {"kind": "trace", "version": PROTOCOL_VERSION}
        )
        assert decoded.trace_id is None
        assert decoded.limit == 10
        assert decoded.status is None

    def test_request_validation(self):
        base = {"kind": "trace", "version": PROTOCOL_VERSION}
        with pytest.raises(ValueError, match="'trace_id' must be a string"):
            TraceRequest.from_json(dict(base, trace_id=7))
        with pytest.raises(ValueError, match="'status' must be a string"):
            TraceRequest.from_json(dict(base, status=1))
        with pytest.raises(ValueError, match="version"):
            TraceRequest.from_json(dict(base, version=PROTOCOL_VERSION + 1))

    def test_response_roundtrip_preserves_trace_documents(self):
        doc = {
            "trace_id": "d" * 32, "root_span_id": "r", "status": "ok",
            "sampled": True, "start_s": 1.0, "duration_s": 0.25, "keep": "sampled",
            "spans": [{"span_id": "r", "parent_span_id": None,
                       "name": "request", "start_s": 1.0, "end_s": 1.25,
                       "duration_s": 0.25, "status": "ok", "attrs": {}}],
        }
        response = TraceResponse(traces=[doc], store={"traces": 1, "kept": 1})
        text = response.canonical_text()
        assert _roundtrip(text, TraceResponse.from_json) == text
        decoded = response_from_json(json.loads(text))
        assert isinstance(decoded, TraceResponse)
        assert decoded.traces == [doc]
        assert decoded.store == {"traces": 1, "kept": 1}

    def test_response_validation(self):
        with pytest.raises(ValueError, match="'traces' must be a list"):
            TraceResponse.from_json({
                "kind": "trace", "version": PROTOCOL_VERSION,
                "traces": {}, "store": {},
            })

    def test_empty_response_roundtrips(self):
        response = TraceResponse()
        decoded = response_from_json(json.loads(response.canonical_text()))
        assert decoded.traces == [] and decoded.store == {}
