"""Unit tests for ranges, Fourier-Motzkin elimination and monotone facts."""

import pytest

from repro.symbolic import (
    ArrayRef,
    as_expr,
    bounds_of,
    cmp_ge,
    cmp_gt,
    definitely_nonneg,
    eliminate_symbol,
    gt0,
    reduce_ge0,
    reduce_gt0,
    sym,
    try_sign,
)
from repro.symbolic.monotone import (
    monotone_simplify,
    provably_nonneg,
    provably_positive,
)


class TestRanges:
    def test_affine_bounds(self):
        lo, hi = bounds_of(2 * sym("i") + 3, {"i": (as_expr(1), sym("N"))})
        assert lo == 5
        assert hi == 2 * sym("N") + 3

    def test_negative_coefficient(self):
        lo, hi = bounds_of(-sym("i"), {"i": (as_expr(1), as_expr(10))})
        assert lo == -10
        assert hi == -1

    def test_square_bounds(self):
        lo, hi = bounds_of(sym("i") * sym("i"), {"i": (as_expr(1), as_expr(10))})
        assert lo == 1
        assert hi == 100

    def test_opaque_entanglement(self):
        e = ArrayRef("A", [sym("i")]).as_expr()
        lo, hi = bounds_of(e, {"i": (as_expr(1), as_expr(5))})
        assert lo is None and hi is None

    def test_unranged_symbol_is_point(self):
        lo, hi = bounds_of(sym("M") + 1, {"i": (as_expr(1), as_expr(5))})
        assert lo == sym("M") + 1
        assert hi == sym("M") + 1

    def test_try_sign_positive(self):
        assert try_sign(sym("i"), {"i": (as_expr(1), sym("N"))}) == "+"

    def test_try_sign_constant(self):
        assert try_sign(as_expr(-3)) == "-"
        assert try_sign(as_expr(0)) == "0"

    def test_try_sign_unknown(self):
        assert try_sign(sym("x")) is None

    def test_definitely_nonneg(self):
        assert definitely_nonneg(sym("i") - 1, {"i": (as_expr(1), sym("N"))})
        assert not definitely_nonneg(sym("i") - 2, {"i": (as_expr(1), sym("N"))})


class TestFourierMotzkin:
    def test_paper_correc_do711(self):
        """Paper Section 3.2: eliminating i from IX1+1-IX2-i > 0 with
        i in [1, NOP] gives IX1+1-IX2-NOP > 0 (i.e. IX2+NOP <= IX1)."""
        expr = sym("IX1") + 1 - sym("IX2") - sym("i")
        p = reduce_gt0(expr, {"i": (as_expr(1), sym("NOP"))}, order=("i",))
        assert p == gt0(sym("IX1") + 1 - sym("IX2") - sym("NOP"))

    def test_positive_coefficient_uses_lower(self):
        # i - 3 > 0 with i in [5, N]: at lower bound 5-3=2>0 -> TRUE.
        p = reduce_gt0(sym("i") - 3, {"i": (as_expr(5), sym("N"))})
        assert p.is_true()

    def test_unsatisfiable(self):
        # i - 3 > 0 with i in [1, 2]: both cases fail.
        p = reduce_gt0(sym("i") - 3, {"i": (as_expr(1), as_expr(2))})
        assert p.is_false()

    def test_quadratic_terminates(self):
        i = sym("i")
        p = reduce_gt0(i * i - i + 1, {"i": (as_expr(1), as_expr(10))})
        # i^2 - i + 1 > 0 for all i in [1,10]; the recursion on the
        # residual coefficient must terminate and may prove it.
        assert p.is_true() or not p.is_false()

    def test_opaque_not_decomposable(self):
        e = ArrayRef("A", [sym("i")]).as_expr() - 1
        p = reduce_gt0(e, {"i": (as_expr(1), as_expr(5))})
        # Cannot eliminate through the opaque atom: falls back to the leaf.
        assert p == gt0(e)

    def test_reduce_ge0(self):
        p = reduce_ge0(sym("i") - 1, {"i": (as_expr(1), sym("N"))})
        assert p.is_true()

    def test_eliminate_symbol_conjunction(self):
        i, n, m = sym("i"), sym("N"), sym("M")
        pred = cmp_gt(m, i)  # M > i for all i in [1, N]  <=  M > N
        out = eliminate_symbol(pred, "i", 1, n)
        assert "i" not in out.free_symbols()
        assert out.evaluate({"M": 5, "N": 4})
        assert not out.evaluate({"M": 4, "N": 4})

    def test_eliminate_noop_when_absent(self):
        p = cmp_gt(sym("M"), 0)
        assert eliminate_symbol(p, "i", 1, sym("N")) == p


class TestMonotoneFacts:
    def test_prefix_difference(self):
        i = sym("i")
        diff = ArrayRef("$c", [i + 1]) - ArrayRef("$c", [i])
        assert provably_nonneg(diff, frozenset({"$c"}))

    def test_wrong_direction(self):
        i = sym("i")
        diff = ArrayRef("$c", [i]) - ArrayRef("$c", [i + 1])
        assert not provably_nonneg(diff, frozenset({"$c"}))

    def test_not_monotone_array(self):
        i = sym("i")
        diff = ArrayRef("A", [i + 1]) - ArrayRef("A", [i])
        assert not provably_nonneg(diff, frozenset({"$c"}))

    def test_positive_needs_residue(self):
        i = sym("i")
        e = ArrayRef("$c", [i + 1]) - ArrayRef("$c", [i]) + 1
        assert provably_positive(e, frozenset({"$c"}))
        e2 = ArrayRef("$c", [i + 1]) - ArrayRef("$c", [i])
        assert not provably_positive(e2, frozenset({"$c"}))

    def test_unmatched_positive_rejected(self):
        i = sym("i")
        # A lone +$c(i) term has unknown sign even for monotone $c.
        assert not provably_nonneg(
            ArrayRef("$c", [i]).as_expr(), frozenset({"$c"})
        )

    def test_monotone_simplify_folds(self):
        i = sym("i")
        pred = cmp_ge(ArrayRef("$c", [i + 1]).as_expr(), ArrayRef("$c", [i]).as_expr())
        assert monotone_simplify(pred, frozenset({"$c"})).is_true()

    def test_monotone_simplify_keeps_others(self):
        pred = cmp_ge(sym("x"), 1)
        assert monotone_simplify(pred, frozenset({"$c"})) == pred
