"""Unit tests for the loop IR: lexer, parser, interpreter, scalar analysis."""

import pytest

from repro.ir import (
    ArrayRead,
    AssignArray,
    BinOp,
    Do,
    InterpError,
    Machine,
    Num,
    ParseError,
    Var,
    While,
    parse_expression,
    parse_program,
)
from repro.ir.lexer import LexError, tokenize
from repro.ir.scalars import assigned_scalars, expr_scalar_reads, read_before_write


class TestLexer:
    def test_tokens(self):
        toks = tokenize("x = A[i] + 3")
        kinds = [t.kind for t in toks]
        assert kinds == ["ident", "sym", "ident", "sym", "ident", "sym",
                         "sym", "num", "newline", "eof"]

    def test_keywords_case_insensitive(self):
        toks = tokenize("DO i = 1, N")
        assert toks[0].kind == "kw" and toks[0].text == "do"

    def test_comments_stripped(self):
        toks = tokenize("x = 1  # a comment\n")
        assert all(t.kind != "ident" or t.text == "x" for t in toks)

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("x = 1 ?")


class TestExpressionParsing:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parens(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_comparison_and_bool(self):
        e = parse_expression("a < b and not c == d")
        assert e.op == "and"

    def test_array_read(self):
        e = parse_expression("A[i + 1]")
        assert isinstance(e, ArrayRead)

    def test_unary_minus(self):
        e = parse_expression("-x + 3")
        assert e.op == "+"

    def test_min_max(self):
        e = parse_expression("min(a, b, 3)")
        assert e.name == "min" and len(e.args) == 3

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + ) 2")


SIMPLE = """
program p
param N
array A(100), B(100)

main
  do i = 1, N @ loop1
    A[i] = B[i] + 1
  end
end
"""


class TestProgramParsing:
    def test_simple(self):
        prog = parse_program(SIMPLE)
        assert prog.name == "p"
        assert prog.params == ("N",)
        assert [d.name for d in prog.arrays] == ["A", "B"]
        assert prog.labelled_loops() == ["loop1"]

    def test_find_loop(self):
        prog = parse_program(SIMPLE)
        loop = prog.find_loop("loop1")
        assert isinstance(loop, Do) and loop.index == "i"
        assert prog.find_loop("nope") is None

    def test_subroutine_array_params(self):
        src = """
program p
array A(10)
subroutine f(X[], n)
  X[n] = 1
end
main
  call f(A[], 3)
end
"""
        prog = parse_program(src)
        sub = prog.subroutines["f"]
        assert sub.array_params == ("X",)
        assert sub.scalar_params == ("n",)

    def test_array_arg_with_offset(self):
        src = """
program p
array A(100)
subroutine f(X[])
  X[1] = 7
end
main
  call f(A[] + 10)
end
"""
        prog = parse_program(src)
        m = Machine(prog)
        r = m.run()
        assert r.arrays["A"][10] == 7  # A[11] written

    def test_update_detection(self):
        src = """
program p
array A(10)
main
  A[3] = A[3] + 1
  A[4] = A[5] + 1
end
"""
        prog = parse_program(src)
        stmts = prog.main
        assert stmts[0].is_update
        assert not stmts[1].is_update

    def test_if_else_while(self):
        src = """
program p
param N
array A(10)
main
  i = 1
  while i <= N @ w
    if A[i] > 0 then
      A[i] = 0
    else
      A[i] = 1
    end
    i = i + 1
  end
end
"""
        prog = parse_program(src)
        assert isinstance(prog.main[1], While)
        assert prog.main[1].label == "w"

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_program("program p\nmain\n  do i = 1, 3\n    x = 1\n")


class TestInterpreter:
    def test_simple_run(self):
        prog = parse_program(SIMPLE)
        m = Machine(prog, params={"N": 5}, arrays={"B": [10] * 100})
        r = m.run()
        assert r.arrays["A"][:5] == [11] * 5
        assert r.loop_trips["loop1"] == 5

    def test_work_counting(self):
        prog = parse_program(SIMPLE)
        r1 = Machine(prog, params={"N": 5}).run()
        r2 = Machine(prog, params={"N": 10}).run()
        assert r2.work > r1.work

    def test_out_of_bounds(self):
        prog = parse_program(SIMPLE)
        m = Machine(prog, params={"N": 200})
        with pytest.raises(InterpError):
            m.run()

    def test_unbound_scalar(self):
        prog = parse_program(SIMPLE)
        m = Machine(prog)  # N not bound
        with pytest.raises(InterpError):
            m.run()

    def test_division_semantics(self):
        src = """
program p
array A(4)
main
  A[1] = 7 / 2
  A[2] = 7 % 3
  A[3] = min(3, 9)
  A[4] = max(3, 9)
end
"""
        r = Machine(parse_program(src)).run()
        assert r.arrays["A"] == [3, 1, 3, 9]

    def test_division_by_zero(self):
        src = "program p\narray A(1)\nmain\n  A[1] = 1 / 0\nend\n"
        with pytest.raises(InterpError):
            Machine(parse_program(src)).run()

    def test_while_semantics(self):
        src = """
program p
param N
array A(64)
main
  i = 1
  while i <= N @ w
    A[i] = i * 2
    i = i + 1
  end
end
"""
        r = Machine(parse_program(src), params={"N": 4}).run()
        assert r.arrays["A"][:4] == [2, 4, 6, 8]
        assert r.loop_trips["w"] == 4

    def test_call_by_value_scalars(self):
        src = """
program p
array A(4)
subroutine f(X[], n)
  n = n + 100
  X[1] = n
end
main
  k = 5
  call f(A[], k)
  A[2] = k
end
"""
        r = Machine(parse_program(src)).run()
        assert r.arrays["A"][0] == 105
        assert r.arrays["A"][1] == 5  # caller's k unchanged

    def test_trace_classification(self):
        src = """
program p
param N
array A(64), B(64)
main
  do i = 1, N @ t
    B[i] = A[i] + A[i+1]
  end
end
"""
        prog = parse_program(src)
        m = Machine(prog, params={"N": 4}, trace_label="t")
        trace = m.run().trace
        assert len(trace.iterations) == 4
        assert trace.output_independent()
        assert trace.flow_independent()
        assert not trace.has_cross_iteration_dependence()

    def test_trace_detects_flow_dep(self):
        src = """
program p
param N
array A(64)
main
  do i = 2, N @ t
    A[i] = A[i-1] + 1
  end
end
"""
        m = Machine(parse_program(src), params={"N": 5}, trace_label="t")
        trace = m.run().trace
        assert not trace.flow_independent()

    def test_trace_detects_output_dep(self):
        src = """
program p
param N
array A(64)
main
  do i = 1, N @ t
    A[1] = i
  end
end
"""
        m = Machine(parse_program(src), params={"N": 3}, trace_label="t")
        trace = m.run().trace
        assert not trace.output_independent()
        assert trace.flow_independent()


class TestScalarAnalysis:
    def test_expr_reads(self):
        e = parse_expression("A[i] + j * k")
        assert expr_scalar_reads(e) == {"i", "j", "k"}

    def test_assigned(self):
        prog = parse_program("""
program p
array A(8)
main
  x = 1
  do i = 1, 3
    y = i
    A[i] = y
  end
end
""")
        assert assigned_scalars(prog.main) == {"x", "i", "y"}

    def test_read_before_write(self):
        prog = parse_program("""
program p
array A(8)
main
  x = t
  t = 2
  y = x
end
""")
        exposed = read_before_write(prog.main)
        assert "t" in exposed
        assert "y" not in exposed
        assert "x" not in exposed  # written before its read

    def test_branch_kills_need_both(self):
        prog = parse_program("""
program p
param c
array A(8)
main
  if c > 0 then
    u = 1
  end
  A[1] = u
end
""")
        # u written only on one branch: still exposed.
        assert "u" in read_before_write(prog.main)

    def test_loop_writes_do_not_kill(self):
        prog = parse_program("""
program p
param N
array A(8)
main
  do i = 1, N
    v = i
  end
  A[1] = v
end
""")
        assert "v" in read_before_write(prog.main)
