"""Unit tests for the canonical symbolic expression algebra."""

import pytest

from repro.symbolic import (
    ArrayRef,
    Expr,
    FloorDiv,
    Max,
    Min,
    Sym,
    as_expr,
    floor_div,
    smax,
    smin,
    sym,
)


class TestConstruction:
    def test_int_coercion(self):
        assert as_expr(5).is_constant()
        assert as_expr(5).constant_value() == 5

    def test_zero(self):
        assert as_expr(0) == 0
        assert (sym("x") - sym("x")) == 0

    def test_sym_roundtrip(self):
        x = sym("x")
        assert x.free_symbols() == {"x"}
        assert not x.is_constant()

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_expr("hello")

    def test_direct_expr_constructor_forbidden(self):
        with pytest.raises(TypeError):
            Expr(1, 2)


class TestArithmetic:
    def test_addition_canonical(self):
        x, y = sym("x"), sym("y")
        assert x + y == y + x

    def test_subtraction_cancels(self):
        x = sym("x")
        assert (3 * x + 2) - (3 * x) == 2

    def test_multiplication_distributes(self):
        x, y = sym("x"), sym("y")
        assert (x + 1) * (y + 2) == x * y + 2 * x + y + 2

    def test_multiplication_commutative(self):
        x, y = sym("x"), sym("y")
        assert x * y == y * x

    def test_power_collection(self):
        x = sym("x")
        assert (x * x).max_degree_of("x") == 2

    def test_neg(self):
        x = sym("x")
        assert -(-x) == x

    def test_rsub(self):
        x = sym("x")
        assert (5 - x) + x == 5

    def test_constant_fold(self):
        assert as_expr(3) * 4 + 2 == 14

    def test_floordiv_exact(self):
        x = sym("x")
        assert (4 * x + 8) // 4 == x + 2

    def test_floordiv_irreducible(self):
        x = sym("x")
        e = (x + 1) // 2
        atoms = e.atoms()
        assert any(isinstance(a, FloorDiv) for a in atoms)

    def test_floordiv_bad_den(self):
        with pytest.raises(ValueError):
            floor_div(sym("x"), 0)


class TestQueries:
    def test_constant_term(self):
        x = sym("x")
        assert (3 * x + 7).constant_term() == 7
        assert (3 * x).constant_term() == 0

    def test_constant_value_raises_on_symbolic(self):
        with pytest.raises(ValueError):
            sym("x").constant_value()

    def test_coeff_of(self):
        x, n = sym("x"), sym("N")
        e = 3 * x * n + 2 * x + 5
        assert e.coeff_of("x") == 3 * n + 2

    def test_drop(self):
        x, n = sym("x"), sym("N")
        e = 3 * x + n + 1
        assert e.drop("x") == n + 1

    def test_affine_in(self):
        x, n = sym("x"), sym("N")
        assert (3 * x + n).is_affine_in(["x"])
        assert not (x * x).is_affine_in(["x"])
        assert (n * n + x).is_affine_in(["x"])

    def test_affine_in_opaque_atom(self):
        x = sym("x")
        e = ArrayRef("A", [x]).as_expr()
        assert not e.is_affine_in(["x"])

    def test_content_gcd(self):
        x, y = sym("x"), sym("y")
        assert (4 * x + 6 * y).content_gcd() == 2
        assert as_expr(0).content_gcd() == 0

    def test_depends_on(self):
        assert (sym("x") + sym("y")).depends_on("x")
        assert not sym("x").depends_on("z")


class TestEvaluation:
    def test_basic(self):
        x, y = sym("x"), sym("y")
        assert (2 * x + y * y).evaluate({"x": 3, "y": 4}) == 22

    def test_array_ref_sequence(self):
        e = ArrayRef("A", [sym("i")]).as_expr()
        assert e.evaluate({"i": 2, "A": [10, 20, 30]}) == 20  # 1-based

    def test_array_ref_callable(self):
        e = ArrayRef("A", [sym("i")]).as_expr()
        assert e.evaluate({"i": 5, "A": lambda i: i * i}) == 25

    def test_unbound_symbol(self):
        with pytest.raises(KeyError):
            sym("nope").evaluate({})

    def test_unbound_array(self):
        with pytest.raises(KeyError):
            ArrayRef("A", [as_expr(1)]).as_expr().evaluate({})

    def test_min_max(self):
        e = smin(sym("a"), sym("b")) + smax(sym("a"), 3)
        assert e.evaluate({"a": 5, "b": 2}) == 2 + 5

    def test_floor_div_eval(self):
        e = floor_div(sym("x") + 1, 2)
        assert e.evaluate({"x": 4}) == 2
        assert e.evaluate({"x": 5}) == 3


class TestSubstitution:
    def test_simple(self):
        x, y = sym("x"), sym("y")
        assert (x + y).substitute({"x": as_expr(3)}) == y + 3

    def test_into_array_index(self):
        e = ArrayRef("A", [sym("i") + 1]).as_expr()
        out = e.substitute({"i": sym("j") * 2})
        assert out == ArrayRef("A", [sym("j") * 2 + 1]).as_expr()

    def test_product_substitution(self):
        x = sym("x")
        e = x * x
        assert e.substitute({"x": sym("y") + 1}) == (sym("y") + 1) * (sym("y") + 1)

    def test_noop_when_absent(self):
        e = sym("x") + 1
        assert e.substitute({"z": as_expr(9)}) is e

    def test_eval_substitute_commute(self):
        x, y = sym("x"), sym("y")
        e = 3 * x * y + y + 2
        env = {"y": 7}
        subbed = e.substitute({"x": as_expr(4)})
        assert subbed.evaluate(env) == e.evaluate({"x": 4, "y": 7})


class TestExtrema:
    def test_min_constant_fold(self):
        assert smin(3, 5, 1) == 1
        assert smax(3, 5, 1) == 5

    def test_min_flatten(self):
        x, y, z = sym("x"), sym("y"), sym("z")
        nested = smin(x, smin(y, z))
        flat = smin(x, y, z)
        assert nested == flat

    def test_min_dedup_single(self):
        x = sym("x")
        assert smin(x, x) == x

    def test_min_atom_class(self):
        m = smin(sym("x"), sym("y"))
        assert any(isinstance(a, Min) for a in m.atoms())

    def test_max_atom_class(self):
        m = smax(sym("x"), sym("y"))
        assert any(isinstance(a, Max) for a in m.atoms())

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            smin()


class TestHashingOrdering:
    def test_equal_hash(self):
        a = 3 * sym("x") + sym("y")
        b = sym("y") + sym("x") * 3
        assert a == b
        assert hash(a) == hash(b)

    def test_constant_hash_matches_int(self):
        assert hash(as_expr(42)) == hash(42)

    def test_array_refs_order_stably(self):
        i = sym("i")
        e = ArrayRef("B", [i + 1]) + ArrayRef("A", [i]) - ArrayRef("B", [i])
        # Just ensure canonicalization doesn't blow up and is stable.
        assert e == ArrayRef("A", [i]) + ArrayRef("B", [i + 1]) - ArrayRef("B", [i])

    def test_atoms_set(self):
        i = sym("i")
        e = ArrayRef("A", [i]) * 2 + i
        names = {type(a).__name__ for a in e.atoms()}
        assert names == {"ArrayRef", "Sym"}
