"""Exposed-read tracking in the dataflow summaries.

Found by the backend-equivalence fuzz sweep (seeds 20041/20136/20157):
a location whose first access in an iteration is a *plain read* but
which a later statement of the same region writes lands in the RW
class, and the EXT-RRED enabling equation used to tolerate the whole RW
self-overlap -- so the reduction transform was licensed across a real
flow dependence (the read observes the pre-loop value under the
transform, the running state sequentially).  ``Summary.exposed`` now
carries first-access-is-a-plain-read locations through compose / branch
merge / loop aggregation, and the enabling equation intersects them
with preceding iterations' writes.
"""

import pytest

from repro.api import Engine, EngineConfig
from repro.core.independence import ext_rred_usr
from repro.usr import Summary, compose
from repro.usr.build import usr_leaf
from repro.lmad import LMAD

#: The minimized unsound shape: every iteration updates B[4..6] in an
#: inner loop, and reads B[i+4] *between* those updates -- the read of
#: B[5] at (i=1, j=1) happens before the update of B[5] at (i=1, j=2),
#: so it is exposed, and iterations 2.. update B[5] as well.
NESTED_READ_BEFORE_WRITE = """
program expread
param N
array A(20), B(20)

main
  do i = 1, N @ target
    do j = 1, 3
      B[j + 3] = B[j + 3] - j
      A[i] = A[i] + B[i + 4]
    end
  end
end
"""

#: Second unsound shape (code review): a plain read *after* the update
#: of the same location in the same iteration.  The delta merge licenses
#: only the update's own self-read; this read observes pre-loop + own
#: delta under the transform but the running sum sequentially.
UPDATE_THEN_READ = """
program updread
param N
array A(4), B(20), V(20)

main
  do i = 1, N @ target
    A[1] = A[1] + V[i]
    x = A[1]
    B[i] = x
  end
end
"""

PURE_HISTOGRAM = """
program hist
param N, K
array H(K), V(N), IDX(N)

main
  do i = 1, N @ target
    H[IDX[i]] = H[IDX[i]] + V[i]
  end
end
"""


@pytest.fixture(scope="module")
def engine():
    return Engine(EngineConfig(use_disk_cache=False))


def test_exposed_read_survives_inner_loop_aggregation(engine):
    plan = engine.compile(NESTED_READ_BEFORE_WRITE).plan("target")
    ls = plan.analysis.summaries["B"]
    assert not ls.per_iteration.exposed.is_empty_leaf(), (
        "the B[i+4] read must stay exposed through the inner-loop "
        "aggregate (it precedes the same-iteration update of its "
        "location)"
    )
    assert not ext_rred_usr(ls).is_empty_leaf(), (
        "the reduction enabling equation must see the exposed read"
    )


def test_reduction_not_licensed_across_exposed_read(engine):
    compiled = engine.compile(NESTED_READ_BEFORE_WRITE)
    report = compiled.execute(
        "target", {"N": 6}, {"B": [5] * 20, "A": [0] * 20}
    )
    # The runtime may validate this loop only if execution stays
    # interpreter-identical; with the real flow dependence on B the
    # exact test must refuse.
    assert report.correct
    assert report.decisions["B"].strategy == "dependent"
    assert not report.parallel


def test_read_after_own_update_stays_exposed(engine):
    compiled = engine.compile(UPDATE_THEN_READ)
    ls = compiled.plan("target").analysis.summaries["A"]
    assert not ls.per_iteration.exposed.is_empty_leaf()
    assert not ext_rred_usr(ls).is_empty_leaf()
    report = compiled.execute(
        "target", {"N": 8}, {"V": [i + 1 for i in range(20)]}
    )
    assert report.correct
    assert not report.parallel
    assert report.decisions["A"].strategy == "dependent"


def test_pure_update_reductions_keep_empty_exposed(engine):
    """No precision regression: update-only histograms still carry an
    empty exposed set (the delta merge licenses the update self-read)
    and still run in parallel."""
    compiled = engine.compile(PURE_HISTOGRAM)
    plan = compiled.plan("target")
    assert plan.analysis.summaries["H"].per_iteration.exposed.is_empty_leaf()
    report = compiled.execute(
        "target",
        {"N": 24, "K": 5},
        {"IDX": [(i * 3) % 5 + 1 for i in range(24)],
         "V": [1] * 24},
    )
    assert report.parallel and report.correct
    assert report.decisions["H"].strategy in ("reduction", "shared")


def test_compose_tracks_first_access_reads():
    loc_a = usr_leaf(LMAD([1], [3], 1))
    loc_b = usr_leaf(LMAD([1], [3], 10))
    read_then_write = compose(Summary.read(loc_a), Summary.write(loc_a))
    assert read_then_write.exposed == loc_a  # read first: stays exposed
    write_then_read = compose(Summary.write(loc_a), Summary.read(loc_a))
    assert write_then_read.exposed.is_empty_leaf()  # covered by the write
    update_only = Summary.read_write(loc_b)
    assert update_only.exposed.is_empty_leaf()  # self-read is licensed
    # a separate read AFTER an update of the same location is NOT the
    # licensed self-read: it must stay exposed
    assert compose(update_only, Summary.read(loc_b)).exposed == loc_b
    assert compose(update_only, Summary.read(loc_a)).exposed == loc_a
