"""Accounting invariants of :class:`repro.runtime.ExecutionReport`.

The simulated-timing layer feeds every evaluation table, so its
arithmetic carries the reproduction's headline numbers.  Pinned here:

* ``speedup(procs=1)`` is the identity for overhead-free loops, and
  sequential outcomes never report a speedup other than 1;
* ``overhead_time`` is monotonically non-increasing in ``procs`` (the
  paper parallelizes the O(N) test work, so more processors can only
  shrink its share);
* ``rtov`` is exactly ``overhead_time / parallel_time`` -- the RTov
  column's definition;
* the real-execution fields (``backend``, ``backend_used``, ``jobs``,
  ``chunks``, ``wall_s``) default to a sequential, not-yet-run state.
"""

import pytest

from repro.runtime import CostModel, ExecutionReport


def _report(parallel=True, n=64, **overheads):
    return ExecutionReport(
        label="L",
        parallel=parallel,
        correct=True,
        seq_work=float(n * 10),
        iteration_costs=[10.0] * n,
        **overheads,
    )


COST = CostModel(spawn_overhead=0.0)
PROCS = (1, 2, 4, 8)


def test_speedup_is_identity_on_one_processor():
    report = _report()
    assert report.speedup(1, COST) == pytest.approx(1.0)
    assert report.parallel_time(1, COST) == pytest.approx(report.seq_work)


def test_sequential_outcome_never_speeds_up():
    report = _report(parallel=False)
    for procs in PROCS:
        assert report.speedup(procs, COST) == pytest.approx(1.0)


def test_speedup_grows_with_processors():
    report = _report()
    speedups = [report.speedup(p, COST) for p in PROCS]
    assert speedups == sorted(speedups)
    assert speedups[-1] > speedups[0]


def test_overhead_monotonically_non_increasing_in_procs():
    report = _report(
        test_overhead=220.0,
        test_leaf_overhead=20.0,
        civ_overhead=100.0,
        bounds_overhead=64.0,
    )
    overheads = [report.overhead_time(p, COST) for p in PROCS]
    for smaller, larger in zip(overheads[1:], overheads):
        assert smaller <= larger + 1e-9
    # the serial O(1) leaf share never parallelizes away
    assert overheads[-1] >= report.serial_overhead


def test_rtov_consistent_with_parallel_time():
    report = _report(
        test_overhead=150.0,
        test_leaf_overhead=30.0,
        inspector_overhead=40.0,
    )
    for procs in PROCS:
        par = report.parallel_time(procs, CostModel())
        rtov = report.rtov(procs, CostModel())
        assert rtov == pytest.approx(
            report.overhead_time(procs, CostModel()) / par
        )
        assert 0.0 <= rtov < 1.0


def test_total_overhead_sums_every_component():
    report = _report(
        test_overhead=5.0,
        civ_overhead=7.0,
        bounds_overhead=11.0,
        inspector_overhead=13.0,
        speculation_overhead=17.0,
    )
    assert report.total_overhead == pytest.approx(5 + 7 + 11 + 13 + 17)
    assert report.parallelizable_overhead == pytest.approx(
        report.total_overhead - report.serial_overhead
    )


def test_misspeculation_charges_a_serial_rerun():
    clean = _report()
    burned = _report(misspeculated=True)
    for procs in (2, 8):
        assert burned.parallel_time(procs, COST) == pytest.approx(
            clean.parallel_time(procs, COST) + burned.seq_work
        )


def test_real_execution_fields_default_to_not_yet_run():
    report = _report()
    assert report.backend == "sequential"
    assert report.backend_used == ""
    assert report.jobs == 1
    assert report.chunks == 0
    assert report.wall_s == 0.0


def test_speculation_fields_default_to_no_speculation():
    report = _report()
    assert report.used_speculation is False
    assert report.misspeculated is False
    assert report.speculation_commits == 0
    assert report.speculation_rollbacks == 0
    assert report.speculation_privatized == []
