"""Schema stability of the BENCH_*.json trajectory documents.

The bench harness's output is a wire format consumed by CI and diffed
between trajectory points, so its shape is pinned exactly like the
``repro.api`` protocol: versioned, byte-stable canonical serialization,
and an exact key set at every level (validated by
``tools/check_bench_schema.py``, which this suite drives both against a
live in-process bench run and against the committed trajectory file).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.api.protocol import canonical_json
from repro.evaluation.bench import (
    BENCH_SUITES,
    BENCH_VERSION,
    format_bench,
    run_bench,
    write_bench,
)

ROOT = Path(__file__).parent.parent.parent


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_schema", ROOT / "tools" / "check_bench_schema.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CHECKER = _checker()


@pytest.fixture(scope="module")
def smoke_doc():
    return run_bench(
        suite="smoke", backends=["sequential", "thread"], jobs=2, repeat=1
    )


def test_smoke_doc_is_schema_valid(smoke_doc):
    assert CHECKER.validate_bench_doc(smoke_doc) == []
    assert smoke_doc["version"] == BENCH_VERSION
    assert smoke_doc["equivalence_ok"] is True
    names = [w["name"] for w in smoke_doc["workloads"]]
    assert len(names) == len(BENCH_SUITES["smoke"]())


def test_doc_serialization_is_byte_stable(smoke_doc, tmp_path):
    path = write_bench(smoke_doc, str(tmp_path))
    assert path.name == "BENCH_smoke.json"
    text = path.read_text()
    assert canonical_json(json.loads(text)) + "\n" == text
    assert CHECKER.check_file(path) == []


def test_key_order_is_pinned(smoke_doc, tmp_path):
    path = write_bench(smoke_doc, str(tmp_path))
    payload = json.loads(path.read_text())
    # canonical form sorts keys at every level; any new/renamed field
    # shows up as a deliberate diff here and in the checker's key sets
    assert list(payload) == sorted(payload)
    for workload in payload["workloads"]:
        assert list(workload) == sorted(workload)
        for entry in workload["results"].values():
            assert list(entry) == sorted(entry)


def test_checker_rejects_schema_drift(smoke_doc):
    broken = json.loads(canonical_json(smoke_doc))
    broken["surprise"] = 1
    assert any("surprise" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(smoke_doc))
    del broken["workloads"][0]["results"]["thread"]["wall_s"]
    assert CHECKER.validate_bench_doc(broken)
    broken = json.loads(canonical_json(smoke_doc))
    broken["version"] = BENCH_VERSION + 1
    assert any("version" in e for e in CHECKER.validate_bench_doc(broken))


def test_checker_rejects_non_canonical_files(smoke_doc, tmp_path):
    path = tmp_path / "BENCH_smoke.json"
    path.write_text(json.dumps(smoke_doc, indent=4, sort_keys=False))
    assert any("canonical" in e for e in CHECKER.check_file(path))


def test_committed_trajectory_file_is_valid():
    committed = ROOT / "BENCH_core.json"
    assert committed.is_file(), (
        "the BENCH_core.json trajectory point must be committed "
        "(regenerate with 'repro-eval bench --suite core')"
    )
    assert CHECKER.check_file(committed) == []
    payload = json.loads(committed.read_text())
    assert payload["suite"] == "core"
    # the committed point must witness a real parallel win with >= 4
    # jobs (the thread/process undo-log or numpy vectorization)
    assert payload["jobs"] >= 4
    assert any(
        win["backend"] in ("thread", "process") and win["speedup"] > 1.0
        for win in payload["parallel_wins"]
    ), "no thread/process win over sequential recorded in BENCH_core.json"


def test_format_bench_summarizes(smoke_doc):
    text = format_bench(smoke_doc)
    assert "suite smoke" in text
    assert "equivalence: ok" in text


# -- the serving trajectory (BENCH_serving.json) -----------------------------


@pytest.fixture(scope="module")
def serving_doc():
    from repro.server import run_multiproc_bench, run_serving_bench

    doc = run_serving_bench(
        levels=(2, 4), requests_per_level=40, workers=2,
        programs=6, compile_cache_size=2,
    )
    # v2 docs carry the multi-process A/B alongside the in-process
    # pools; tiny knobs -- the schema is what's under test here
    doc["multiproc"] = run_multiproc_bench(
        backends=2, replicas=2, backend_workers=1,
        levels=(2,), requests_per_level=16, programs=6,
        zipf_clients=4, zipf_multiplex=2, zipf_requests=24,
        hot_rps=4.0,
    )
    return doc


def test_serving_doc_is_schema_valid(serving_doc):
    from repro.server import SERVING_VERSION

    assert CHECKER.validate_bench_doc(serving_doc) == []
    assert CHECKER.validate_serving_doc(serving_doc) == []
    assert serving_doc["version"] == SERVING_VERSION
    assert [level["clients"] for level in serving_doc["levels"]] == [2, 4]


def test_serving_doc_is_byte_stable(serving_doc, tmp_path):
    from repro.server import write_serving_bench

    path = write_serving_bench(serving_doc, str(tmp_path))
    assert path.name == "BENCH_serving.json"
    text = path.read_text()
    assert canonical_json(json.loads(text)) + "\n" == text
    assert CHECKER.check_file(path) == []


def test_serving_checker_rejects_drift(serving_doc):
    broken = json.loads(canonical_json(serving_doc))
    broken["surprise"] = 1
    assert any("surprise" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(serving_doc))
    del broken["levels"][0]["pools"]["sharded"]["throughput_rps"]
    assert CHECKER.validate_bench_doc(broken)
    broken = json.loads(canonical_json(serving_doc))
    broken["version"] = 999
    assert any("version" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(serving_doc))
    del broken["levels"][0]["pools"]["shared"]
    assert any("pools" in e for e in CHECKER.validate_bench_doc(broken))


def test_serving_checker_rejects_multiproc_drift(serving_doc):
    broken = json.loads(canonical_json(serving_doc))
    del broken["multiproc"]
    assert any("multiproc" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(serving_doc))
    broken["multiproc"]["surprise"] = 1
    assert any("surprise" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(serving_doc))
    del broken["multiproc"]["cold"]["mean_speedup"]
    assert CHECKER.validate_bench_doc(broken)
    broken = json.loads(canonical_json(serving_doc))
    del broken["multiproc"]["zipf"]["systems"]["multiproc"]
    assert any("systems" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(serving_doc))
    broken["multiproc"]["zipf"]["systems"]["single"]["skew"] = "uniform"
    assert CHECKER.validate_bench_doc(broken)


def test_serving_v3_summaries_carry_slowest_tables(serving_doc):
    # every per-level pool summary (and the zipf A/B summaries) is a
    # v3 run_load document: the slowest table rides along
    for level in serving_doc["levels"]:
        for pool in level["pools"].values():
            assert isinstance(pool["slowest"], list)
            for entry in pool["slowest"]:
                assert set(entry) == {"latency_s", "trace_id", "verb"}


def test_serving_checker_rejects_slowest_drift(serving_doc):
    broken = json.loads(canonical_json(serving_doc))
    broken["levels"][0]["pools"]["sharded"]["slowest"] = "not-a-list"
    assert any("slowest" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(serving_doc))
    slowest = broken["levels"][0]["pools"]["sharded"]["slowest"]
    if slowest:
        slowest[0]["surprise"] = 1
        assert any("slowest" in e for e in CHECKER.validate_bench_doc(broken))
    # a v3 summary without the table at all is schema drift
    broken = json.loads(canonical_json(serving_doc))
    del broken["levels"][0]["pools"]["shared"]["slowest"]
    assert CHECKER.validate_bench_doc(broken)


def test_serving_checker_still_accepts_v2_documents(serving_doc):
    # the committed BENCH_serving.json predates v3; the checker keeps
    # validating old trajectory points by their own version's key set
    assert 2 in CHECKER.KNOWN_SERVING_VERSIONS
    assert CHECKER._SERVING_SUMMARY_KEYS_V3 - CHECKER._SERVING_SUMMARY_KEYS_V2 \
        == {"slowest"}


def test_format_serving_summarizes(serving_doc):
    from repro.server import format_serving

    text = format_serving(serving_doc)
    assert "serving bench" in text
    assert "sharded" in text and "shared" in text


# -- the speculation trajectory (BENCH_speculation.json) ---------------------


@pytest.fixture(scope="module")
def speculation_doc():
    from repro.evaluation.bench import run_speculation_bench

    # tiny sizes: the schema is what's under test, not the speedups
    return run_speculation_bench(
        jobs=2, repeat=1, trips=24, inner=40, cells=256
    )


def test_speculation_doc_is_schema_valid(speculation_doc):
    assert CHECKER.validate_bench_doc(speculation_doc) == []
    assert CHECKER.validate_speculation_doc(speculation_doc) == []
    assert speculation_doc["version"] == BENCH_VERSION
    assert speculation_doc["equivalence_ok"] is True
    assert all(
        w["committed"] for w in speculation_doc["gap"]["workloads"]
    )
    assert all(
        w["rollbacks"] == 1
        for w in speculation_doc["conflict"]["workloads"]
    )


def test_speculation_doc_is_byte_stable(speculation_doc, tmp_path):
    path = write_bench(speculation_doc, str(tmp_path))
    assert path.name == "BENCH_speculation.json"
    text = path.read_text()
    assert canonical_json(json.loads(text)) + "\n" == text
    assert CHECKER.check_file(path) == []


def test_speculation_checker_rejects_drift(speculation_doc):
    broken = json.loads(canonical_json(speculation_doc))
    broken["surprise"] = 1
    assert any("surprise" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(speculation_doc))
    del broken["gap"]["workloads"][0]["speedup"]
    assert CHECKER.validate_bench_doc(broken)
    broken = json.loads(canonical_json(speculation_doc))
    broken["conflict"]["workloads"][0]["committed"] = True
    assert any("committed" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(speculation_doc))
    broken["version"] = 999
    assert any("version" in e for e in CHECKER.validate_bench_doc(broken))


def test_format_speculation_summarizes(speculation_doc):
    from repro.evaluation.bench import format_speculation_bench

    text = format_speculation_bench(speculation_doc)
    assert "suite speculation" in text
    assert "commit" in text and "rollback" in text
    assert "equivalence: ok" in text


def test_committed_speculation_trajectory_is_valid():
    committed = ROOT / "BENCH_speculation.json"
    assert committed.is_file(), (
        "the BENCH_speculation.json trajectory point must be committed "
        "(regenerate with 'repro-eval bench --suite speculation')"
    )
    assert CHECKER.check_file(committed) == []
    payload = json.loads(committed.read_text())
    assert payload["suite"] == "speculation"
    assert payload["jobs"] >= 4
    assert payload["equivalence_ok"] is True
    # the acceptance bar: speculation beats the reference baseline on
    # >= 80% of the gap workloads, and a misspeculation costs less than
    # 2.5x the bare in-order execution
    assert payload["gap"]["win_fraction"] >= 0.8
    assert payload["conflict"]["max_loss"] < 2.5


def test_committed_serving_trajectory_is_valid():
    committed = ROOT / "BENCH_serving.json"
    assert committed.is_file(), (
        "the BENCH_serving.json trajectory point must be committed "
        "(regenerate with 'repro-eval loadgen --bench')"
    )
    assert CHECKER.check_file(committed) == []
    payload = json.loads(committed.read_text())
    assert payload["suite"] == "serving"
    assert len(payload["levels"]) >= 3, "need >= 3 concurrency levels"
    # the acceptance claim: digest-sharded pooling beats the shared
    # engine on the warm-cache analyze-heavy mix
    assert payload["sharded_wins"] is True
    for level in payload["levels"]:
        for entry in level["pools"].values():
            assert entry["errors"] == 0 and not entry["failures"]
    # the v2 acceptance: the multi-process A/B is recorded with a
    # >= 4-backend front tier, a zipf hot-shard run, and no errors
    multiproc = payload["multiproc"]
    assert multiproc["backends"] >= 4
    assert isinstance(multiproc["multiproc_wins"], bool)
    assert isinstance(multiproc["hot_shard_wins"], bool)
    assert multiproc["zipf"]["systems"]["multiproc"]["skew"] == "zipf"
    for level in multiproc["cold"]["levels"]:
        for entry in level["systems"].values():
            assert entry["errors"] == 0 and not entry["failures"]
    for entry in multiproc["zipf"]["systems"].values():
        assert entry["errors"] == 0 and not entry["failures"]


# -- the compile trajectory (BENCH_compile.json) -----------------------------


@pytest.fixture(scope="module")
def compile_doc():
    from repro.evaluation.bench import run_compile_bench

    # tiny mix: the schema (and the zero-divergence invariant) is
    # what's under test, not the latency numbers
    return run_compile_bench(seed=0, programs=3, repeat=1)


def test_compile_doc_is_schema_valid(compile_doc):
    assert CHECKER.validate_bench_doc(compile_doc) == []
    assert CHECKER.validate_compile_doc(compile_doc) == []
    assert compile_doc["version"] == BENCH_VERSION
    assert compile_doc["divergences"] == 0
    assert compile_doc["equivalence_ok"] is True
    assert set(compile_doc["sections"]) == {"fuzz", "workloads"}
    for body in compile_doc["sections"].values():
        assert 0.0 <= body["tier0_fraction"] <= 1.0
        for entry in body["items"]:
            # tier provenance is internally consistent: tier0 iff the
            # screen resolved every cascade of the loop
            resolved = entry["screening"] == "resolved"
            assert (entry["tier_used"] == "tier0") == resolved
            assert (entry["escalation_reason"] == "") == resolved


def test_compile_doc_is_byte_stable(compile_doc, tmp_path):
    path = write_bench(compile_doc, str(tmp_path))
    assert path.name == "BENCH_compile.json"
    text = path.read_text()
    assert canonical_json(json.loads(text)) + "\n" == text
    assert CHECKER.check_file(path) == []


def test_compile_checker_rejects_drift(compile_doc):
    broken = json.loads(canonical_json(compile_doc))
    broken["surprise"] = 1
    assert any("surprise" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(compile_doc))
    del broken["sections"]["fuzz"]["items"][0]["tier_used"]
    assert CHECKER.validate_bench_doc(broken)
    broken = json.loads(canonical_json(compile_doc))
    broken["sections"]["fuzz"]["items"][0]["divergent"] = True
    assert any("divergence" in e for e in CHECKER.validate_bench_doc(broken))
    broken = json.loads(canonical_json(compile_doc))
    broken["divergences"] = 1
    assert any(
        "equivalence_ok" in e for e in CHECKER.validate_bench_doc(broken)
    )
    broken = json.loads(canonical_json(compile_doc))
    broken["version"] = 999
    assert any("version" in e for e in CHECKER.validate_bench_doc(broken))


def test_format_compile_summarizes(compile_doc):
    from repro.evaluation.bench import format_compile_bench

    text = format_compile_bench(compile_doc)
    assert "suite compile" in text
    assert "tier0" in text
    assert "equivalence: ok" in text


def test_committed_compile_trajectory_is_valid():
    committed = ROOT / "BENCH_compile.json"
    assert committed.is_file(), (
        "the BENCH_compile.json trajectory point must be committed "
        "(regenerate with 'repro-eval bench --suite compile')"
    )
    assert CHECKER.check_file(committed) == []
    payload = json.loads(committed.read_text())
    assert payload["suite"] == "compile"
    assert payload["divergences"] == 0
