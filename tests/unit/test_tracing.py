"""The tracing layer itself: wire contexts, spans, the per-request
trace, and the bounded tail-sampling store.

The load-bearing contracts: the wire context is default-tolerant
(anything malformed reads as *untraced*, never an error), a finished
trace is offered to the store exactly once, compile-phase attribution
bridges the profiler only under the non-blocking lock, and the store
never exceeds its caps while evicting strictly lowest-retention-class
first -- an error trace is the last thing to go.
"""

import random
import threading

from repro import profiling
from repro.server.tracing import (
    DEFAULT_KEEP_PROBABILITY,
    DEFAULT_MAX_SPANS,
    DEFAULT_MAX_TRACES,
    DEFAULT_SLOW_S,
    KEEP_PRIORITY,
    PHASE_TIMERS,
    RequestTrace,
    Span,
    TraceContext,
    TraceStore,
    maybe_span,
    mint_span_id,
    mint_trace_id,
)


class _FakeClock:
    """A deterministic clock: each read advances by *step*."""

    def __init__(self, start=1000.0, step=0.01):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTraceContext:
    def test_wire_roundtrip(self):
        context = TraceContext("abc123", parent_span_id="p1", sampled=True)
        again = TraceContext.from_wire(context.to_wire())
        assert again.trace_id == "abc123"
        assert again.parent_span_id == "p1"
        assert again.sampled is True

    def test_parent_omitted_when_absent(self):
        doc = TraceContext("abc").to_wire()
        assert doc == {"trace_id": "abc", "sampled": False}

    def test_malformed_payloads_read_as_untraced(self):
        # default tolerance: a bad context must never become an error
        for payload in (None, 7, "x", [], {}, {"trace_id": ""},
                        {"trace_id": 9}, {"sampled": True}):
            assert TraceContext.from_wire(payload) is None

    def test_malformed_parent_is_dropped_not_fatal(self):
        context = TraceContext.from_wire(
            {"trace_id": "t", "parent_span_id": 42, "sampled": 1}
        )
        assert context.trace_id == "t"
        assert context.parent_span_id is None
        assert context.sampled is True

    def test_minted_ids_are_distinct_hex(self):
        a, b = mint_trace_id(), mint_trace_id()
        assert a != b and len(a) == 32 and int(a, 16) >= 0
        assert len(mint_span_id()) == 16


class TestSpan:
    def test_unfinished_span_serializes_with_zero_duration(self):
        span = Span("execute", parent_id="root", start_s=5.0)
        doc = span.to_json()
        assert doc["end_s"] == doc["start_s"] == 5.0
        assert doc["duration_s"] == 0.0
        assert doc["status"] == "ok"

    def test_attrs_are_copied_out(self):
        span = Span("compile", None, 1.0)
        span.set("cached", True)
        doc = span.to_json()
        doc["attrs"]["cached"] = False
        assert span.attrs["cached"] is True


class TestRequestTrace:
    def test_span_tree_hangs_under_root_by_default(self):
        trace = RequestTrace(clock=_FakeClock(), verb="analyze")
        child = trace.start_span("queue_wait", shard=2)
        trace.end_span(child)
        doc = trace.finish()
        assert doc["status"] == "ok"
        spans = {s["name"]: s for s in doc["spans"]}
        assert spans["request"]["parent_span_id"] is None
        assert spans["queue_wait"]["parent_span_id"] == doc["root_span_id"]
        assert spans["queue_wait"]["attrs"] == {"shard": 2}
        assert spans["request"]["attrs"]["verb"] == "analyze"

    def test_adopt_continues_the_wire_context(self):
        context = TraceContext("wire-id", parent_span_id="up", sampled=True)
        trace = RequestTrace.adopt(context, clock=_FakeClock())
        assert trace.trace_id == "wire-id"
        assert trace.sampled is True
        assert trace.root.parent_id == "up"

    def test_adopt_none_mints_fresh(self):
        trace = RequestTrace.adopt(None, clock=_FakeClock())
        assert trace.trace_id and trace.sampled is False

    def test_child_context_defaults_parent_to_root(self):
        trace = RequestTrace(clock=_FakeClock())
        context = trace.child_context()
        assert context.trace_id == trace.trace_id
        assert context.parent_span_id == trace.root.span_id
        rpc = trace.start_span("backend_rpc")
        assert trace.child_context(rpc.span_id).parent_span_id == rpc.span_id

    def test_finish_is_once_only_and_offers_to_store(self):
        store = TraceStore()
        trace = RequestTrace(sampled=True, store=store, clock=_FakeClock())
        doc = trace.finish()
        assert doc is not None
        assert trace.finish() is None  # repeat call: ignored
        assert len(store) == 1
        assert store.get(trace.trace_id)["keep"] == "sampled"

    def test_finish_error_records_code(self):
        trace = RequestTrace(clock=_FakeClock())
        doc = trace.finish(status="error", error_code="overloaded")
        assert doc["status"] == "error"
        root = doc["spans"][0]
        assert root["attrs"]["error_code"] == "overloaded"

    def test_span_contextmanager_marks_exceptions(self):
        trace = RequestTrace(clock=_FakeClock())
        try:
            with trace.span("compile"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        doc = trace.finish(status="error")
        compile_span = [s for s in doc["spans"] if s["name"] == "compile"][0]
        assert compile_span["status"] == "error"
        assert compile_span["end_s"] >= compile_span["start_s"]

    def test_durations_nest_inside_root(self):
        clock = _FakeClock(step=0.05)
        trace = RequestTrace(clock=clock)
        with trace.span("queue_wait"):
            pass
        with trace.span("compile"):
            pass
        doc = trace.finish()
        root = doc["spans"][0]
        children = doc["spans"][1:]
        assert sum(s["duration_s"] for s in children) <= root["duration_s"]
        for span in children:
            assert root["start_s"] <= span["start_s"]
            assert span["end_s"] <= root["end_s"]

    def test_phase_capture_bridges_profiler_on_sampled_traces(self):
        trace = RequestTrace(sampled=True)
        with trace.span("compile", phases=True):
            with profiling.timer(PHASE_TIMERS["summarize"]):
                pass
            with profiling.timer(PHASE_TIMERS["cascade"]):
                pass
        assert not profiling.is_enabled()  # left as found
        compile_span = trace.spans[-1]
        phases = compile_span.attrs.get("phases", {})
        assert set(phases) <= set(PHASE_TIMERS)
        assert {"summarize", "cascade"} <= set(phases)
        assert all(v >= 0.0 for v in phases.values())

    def test_phase_capture_skipped_on_unsampled_traces(self):
        trace = RequestTrace(sampled=False)
        with trace.span("compile", phases=True):
            with profiling.timer(PHASE_TIMERS["summarize"]):
                pass
        assert "phases" not in trace.spans[-1].attrs

    def test_phase_lock_loser_skips_attribution_without_blocking(self):
        from repro.server import tracing

        trace = RequestTrace(sampled=True)
        assert tracing._PHASE_LOCK.acquire(False)
        try:
            with trace.span("compile", phases=True):
                pass
        finally:
            tracing._PHASE_LOCK.release()
        assert "phases" not in trace.spans[-1].attrs

    def test_concurrent_span_appends_are_safe(self):
        trace = RequestTrace(clock=_FakeClock())

        def record(i):
            for _ in range(50):
                span = trace.start_span(f"op{i}")
                trace.end_span(span)

        threads = [threading.Thread(target=record, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        doc = trace.finish()
        assert len(doc["spans"]) == 1 + 4 * 50

    def test_maybe_span_is_noop_without_tracer(self):
        with maybe_span(None, "compile") as span:
            span.set("cached", True)  # must not raise
        trace = RequestTrace(clock=_FakeClock())
        with maybe_span(trace, "compile") as span:
            span.set("cached", True)
        assert trace.spans[-1].attrs == {"cached": True}


def _doc(trace_id, status="ok", duration_s=0.001, sampled=False, spans=1):
    return {
        "trace_id": trace_id,
        "root_span_id": f"{trace_id}-root",
        "status": status,
        "sampled": sampled,
        "start_s": 0.0,
        "duration_s": duration_s,
        "spans": [{"span_id": f"{trace_id}-s{i}", "parent_span_id": None,
                   "name": "request", "start_s": 0.0, "end_s": duration_s,
                   "duration_s": duration_s, "status": status, "attrs": {}}
                  for i in range(spans)],
    }


class _AlwaysDrop(random.Random):
    def random(self):
        return 1.0  # >= any keep probability


class _AlwaysKeep(random.Random):
    def random(self):
        return 0.0


class TestTraceStore:
    def test_classification_order(self):
        store = TraceStore()
        assert store.classify(_doc("a", status="error")) == "error"
        assert store.classify(_doc("b", duration_s=DEFAULT_SLOW_S)) == "slow"
        assert store.classify(_doc("c", sampled=True)) == "sampled"
        assert store.classify(_doc("d")) == "probabilistic"
        # priorities are strictly ordered
        assert (KEEP_PRIORITY["probabilistic"] < KEEP_PRIORITY["sampled"]
                < KEEP_PRIORITY["slow"] < KEEP_PRIORITY["error"])

    def test_errors_slow_and_sampled_always_kept(self):
        store = TraceStore(rng=_AlwaysDrop())
        assert store.offer(_doc("err", status="error"))
        assert store.offer(_doc("slow", duration_s=1.0))
        assert store.offer(_doc("sampled", sampled=True))
        assert not store.offer(_doc("plain"))
        assert len(store) == 3
        assert store.sampled_out == 1

    def test_probabilistic_keeps_with_configured_probability(self):
        store = TraceStore(rng=_AlwaysKeep())
        assert store.offer(_doc("plain"))
        assert store.get("plain")["keep"] == "probabilistic"
        assert store.keep_probability == DEFAULT_KEEP_PROBABILITY

    def test_trace_cap_evicts_oldest_lowest_class_first(self):
        store = TraceStore(max_traces=2, rng=_AlwaysKeep())
        store.offer(_doc("old-plain"))
        store.offer(_doc("err", status="error"))
        store.offer(_doc("new-plain"))
        assert len(store) == 2
        assert store.get("old-plain") is None  # the lowest class went
        assert store.get("err") is not None
        assert store.get("new-plain") is not None
        assert store.evicted == 1

    def test_newcomer_below_store_floor_is_dropped_not_swapped(self):
        store = TraceStore(max_traces=2, rng=_AlwaysKeep())
        store.offer(_doc("e1", status="error"))
        store.offer(_doc("e2", status="error"))
        assert not store.offer(_doc("plain"))
        assert len(store) == 2
        assert store.get("plain") is None
        assert store.get("e1") is not None and store.get("e2") is not None

    def test_span_cap_bounds_total_and_truncates_oversized(self):
        store = TraceStore(max_traces=100, max_spans=10, rng=_AlwaysKeep())
        store.offer(_doc("big", status="error", spans=25))
        doc = store.get("big")
        assert len(doc["spans"]) == 10
        assert doc["spans_truncated"] == 15
        assert store.span_total <= 10

    def test_span_cap_evicts_whole_traces(self):
        store = TraceStore(max_traces=100, max_spans=10, rng=_AlwaysKeep())
        for i in range(5):
            store.offer(_doc(f"t{i}", status="error", spans=4))
        assert store.span_total <= 10
        assert len(store) <= 2
        assert store.get("t4") is not None  # newest survives

    def test_reoffer_replaces_without_double_count(self):
        store = TraceStore(rng=_AlwaysKeep())
        store.offer(_doc("t", spans=3))
        store.offer(_doc("t", spans=5))
        assert len(store) == 1
        assert store.span_total == 5

    def test_extend_grafts_within_budget(self):
        store = TraceStore(max_spans=6, rng=_AlwaysKeep())
        store.offer(_doc("t", status="error", spans=2))
        extra = _doc("x", spans=10)["spans"]
        store.extend("t", extra)
        doc = store.get("t")
        assert len(doc["spans"]) == 6
        assert store.span_total <= 6
        store.extend("missing", extra)  # unknown id: silently ignored

    def test_recent_is_newest_first_and_status_filtered(self):
        store = TraceStore(rng=_AlwaysKeep())
        store.offer(_doc("a"))
        store.offer(_doc("b", status="error"))
        store.offer(_doc("c"))
        assert [d["trace_id"] for d in store.recent(limit=2)] == ["c", "b"]
        assert [d["trace_id"] for d in store.recent(limit=10, status="error")] \
            == ["b"]

    def test_snapshot_key_set_is_pinned(self):
        store = TraceStore()
        assert set(store.snapshot()) == {
            "traces", "spans", "max_traces", "max_spans", "slow_s",
            "keep_probability", "offered", "kept", "sampled_out", "evicted",
        }
        assert store.snapshot()["max_traces"] == DEFAULT_MAX_TRACES
        assert store.snapshot()["max_spans"] == DEFAULT_MAX_SPANS

    def test_get_returns_copies(self):
        store = TraceStore(rng=_AlwaysKeep())
        store.offer(_doc("t"))
        store.get("t")["status"] = "mangled"
        assert store.get("t")["status"] == "ok"
