"""Unit tests for the Fig. 2 data-flow equations and related passes."""

from repro.lmad import interval, point
from repro.symbolic import ArrayRef, cmp_eq, cmp_ne, sym
from repro.usr import (
    Summary,
    aggregate_loop,
    bounds_overestimate,
    compose,
    estimate_bounds,
    merge_branches,
    mutually_exclusive,
    overestimate,
    reshape,
    umeg_parts,
    underestimate,
    usr_gate,
    usr_leaf,
    usr_recurrence,
    usr_subtract,
    usr_union,
)


def _sets(summary, env=None):
    env = env or {}
    return (
        summary.wf.evaluate(env),
        summary.ro.evaluate(env),
        summary.rw.evaluate(env),
    )


class TestCompose:
    def test_read_then_write_same_location(self):
        """Fig. 2(a): RO then WF of the same region -> RW."""
        r = Summary.read(usr_leaf(interval(1, 5)))
        w = Summary.write(usr_leaf(interval(1, 5)))
        wf, ro, rw = _sets(compose(r, w))
        assert wf == set() and ro == set()
        assert rw == set(range(1, 6))

    def test_write_then_read_stays_wf(self):
        w = Summary.write(usr_leaf(interval(1, 5)))
        r = Summary.read(usr_leaf(interval(1, 5)))
        wf, ro, rw = _sets(compose(w, r))
        assert wf == set(range(1, 6))
        assert ro == set() and rw == set()

    def test_disjoint_regions(self):
        w = Summary.write(usr_leaf(interval(1, 5)))
        r = Summary.read(usr_leaf(interval(10, 15)))
        wf, ro, rw = _sets(compose(w, r))
        assert wf == set(range(1, 6))
        assert ro == set(range(10, 16))
        assert rw == set()

    def test_partial_overlap(self):
        r = Summary.read(usr_leaf(interval(1, 10)))
        w = Summary.write(usr_leaf(interval(5, 20)))
        wf, ro, rw = _sets(compose(r, w))
        assert wf == set(range(11, 21))
        assert ro == set(range(1, 5))
        assert rw == set(range(5, 11))

    def test_classes_partition_accesses(self):
        r = Summary.read(usr_leaf(interval(1, 8)))
        w = Summary.write(usr_leaf(interval(5, 12)))
        out = compose(r, w)
        wf, ro, rw = _sets(out)
        assert not (wf & ro) and not (wf & rw) and not (ro & rw)
        assert wf | ro | rw == set(range(1, 13))


class TestMergeBranches:
    def test_same_summary_cancels_gate(self):
        """The Section 7 related-work example: both branches write the
        same location, so the gate disappears."""
        s = Summary.write(usr_leaf(point(sym("i"))))
        merged = merge_branches(cmp_eq(sym("p"), 0), s, s)
        assert merged.wf == s.wf  # no gate wrapper

    def test_different_summaries_gated(self):
        a = Summary.write(usr_leaf(point(1)))
        b = Summary.write(usr_leaf(point(2)))
        merged = merge_branches(cmp_eq(sym("p"), 0), a, b)
        assert merged.wf.evaluate({"p": 0}) == {1}
        assert merged.wf.evaluate({"p": 1}) == {2}


class TestAggregateLoop:
    def test_independent_writes(self):
        body = Summary.write(usr_leaf(point(sym("i"))))
        ls = aggregate_loop("i", 1, sym("N"), body)
        assert ls.aggregate.wf.evaluate({"N": 4}) == {1, 2, 3, 4}
        assert ls.aggregate.ro.evaluate({"N": 4}) == set()

    def test_reads_never_written_stay_ro(self):
        body = Summary(
            wf=usr_leaf(point(sym("i"))),
            ro=usr_leaf(point(sym("i") + 100)),
        )
        ls = aggregate_loop("i", 1, 4, body)
        assert ls.aggregate.ro.evaluate({}) == {101, 102, 103, 104}

    def test_read_before_later_write_demotes(self):
        """Iteration i reads location i+1 before iteration i+1 writes it:
        those locations are NOT write-first at loop level (Fig. 2(b)
        subtracts earlier iterations' reads)."""
        body = Summary(
            wf=usr_leaf(point(sym("i"))),
            ro=usr_leaf(point(sym("i") + 1)),
        )
        ls = aggregate_loop("i", 1, 4, body)
        wf = ls.aggregate.wf.evaluate({})
        assert wf == {1}  # only location 1 is written before any read

    def test_read_of_earlier_write_stays_wf(self):
        """Iteration i reads location i-1 AFTER iteration i-1 wrote it:
        the first access is still a write, so WF is preserved."""
        body = Summary(
            wf=usr_leaf(point(sym("i"))),
            ro=usr_leaf(point(sym("i") - 1)),
        )
        ls = aggregate_loop("i", 1, 4, body)
        assert ls.aggregate.wf.evaluate({}) == {1, 2, 3, 4}

    def test_prefix_writes(self):
        body = Summary.write(usr_leaf(point(sym("i"))))
        ls = aggregate_loop("i", 1, sym("N"), body)
        env = {"N": 5, ls.index: 4}
        # prefix at i=4: writes of iterations 1..3
        assert ls.prefix_writes.evaluate(env) == {1, 2, 3}


class TestReshape:
    def test_mutually_exclusive_negation(self):
        c = cmp_ne(sym("s"), 1)
        from repro.symbolic import b_not

        assert mutually_exclusive(c, b_not(c))

    def test_mutually_exclusive_constants(self):
        assert mutually_exclusive(cmp_eq(sym("s"), 1), cmp_eq(sym("s"), 2))
        assert not mutually_exclusive(cmp_eq(sym("s"), 1), cmp_eq(sym("t"), 2))

    def test_umeg_parts(self):
        c = cmp_eq(sym("s"), 1)
        from repro.symbolic import b_not

        u = usr_union(
            usr_gate(c, usr_leaf(interval(1, 5))),
            usr_gate(b_not(c), usr_leaf(interval(6, 9))),
        )
        parts = umeg_parts(u)
        assert parts is not None and len(parts) == 2

    def test_umeg_subtract_distributes(self):
        c = cmp_eq(sym("s"), 1)
        from repro.symbolic import b_not
        from repro.usr import Subtract, Union, Gate

        x = usr_union(
            usr_gate(c, usr_leaf(interval(1, 10))),
            usr_gate(b_not(c), usr_leaf(interval(20, 30))),
        )
        y = usr_union(
            usr_gate(c, usr_leaf(interval(1, 5))),
            usr_gate(b_not(c), usr_leaf(interval(20, 25))),
        )
        out = reshape(usr_subtract(x, y))
        # Semantics preserved...
        for s in (0, 1):
            assert out.evaluate({"s": s}) == usr_subtract(x, y).evaluate({"s": s})
        # ...and the subtraction moved inside the gates.
        assert isinstance(out, (Union, Gate))


class TestEstimates:
    def test_overestimate_covers(self):
        u = usr_subtract(usr_leaf(interval(1, 10)), usr_leaf(interval(3, 5)))
        est = overestimate(u)
        assert not est.failed
        concrete = set()
        for lmad in est.lmads:
            concrete |= lmad.enumerate({})
        assert u.evaluate({}) <= concrete

    def test_overestimate_gate_empty_pred(self):
        g = usr_gate(cmp_eq(sym("s"), 1), usr_leaf(interval(1, 5)))
        est = overestimate(g)
        assert est.pred.evaluate({"s": 0})  # gate false -> empty
        assert not est.pred.evaluate({"s": 1})

    def test_underestimate_contained(self):
        u = usr_union(usr_leaf(interval(1, 5)), usr_leaf(interval(8, 9)))
        est = underestimate(u)
        assert not est.failed
        concrete = set()
        for lmad in est.lmads:
            concrete |= lmad.enumerate({})
        assert concrete <= u.evaluate({})

    def test_underestimate_intersect_fails(self):
        u = Summary  # noqa: F841  (just to use import)
        from repro.usr import usr_intersect

        est = underestimate(
            usr_intersect(usr_leaf(interval(1, 5)), usr_leaf(interval(3, 9)))
        )
        assert est.failed

    def test_recurrence_aggregated_overestimate(self):
        r = usr_recurrence("i", 1, sym("N"), usr_leaf(point(2 * sym("i"))))
        est = overestimate(r)
        assert not est.failed


class TestBoundsComp:
    def test_overestimate_strips_gates_and_subtrahends(self):
        g = usr_gate(
            cmp_eq(sym("s"), 1),
            usr_subtract(usr_leaf(interval(1, 10)), usr_leaf(interval(3, 4))),
        )
        out = bounds_overestimate(g)
        assert out.evaluate({}) == set(range(1, 11))

    def test_estimate_bounds_recurrence(self):
        from repro.symbolic import ArrayRef

        body = usr_leaf(point(ArrayRef("B", [sym("i")])))
        r = usr_recurrence("i", 1, 4, body)
        result = estimate_bounds(r, {"B": [10, 3, 99, 7]})
        assert (result.lower, result.upper) == (3, 99)
        assert result.iterations == 4  # the modelled O(N) reduction cost

    def test_estimate_bounds_empty(self):
        result = estimate_bounds(usr_leaf(interval(5, 2)), {})
        assert result.is_empty()
