"""Structural sanity tests for all 26 benchmark models."""

import pytest

from repro.ir import Machine
from repro.workloads import ALL_BENCHMARKS, get_benchmark


@pytest.mark.parametrize("spec", ALL_BENCHMARKS, ids=[s.name for s in ALL_BENCHMARKS])
class TestSpecStructure:
    def test_program_parses(self, spec):
        assert spec.program.name == spec.name or spec.program.name

    def test_all_measured_loops_exist(self, spec):
        labels = set(spec.program.labelled_loops())
        for loop in spec.loops:
            assert loop.label in labels, f"{spec.name}: {loop.label} missing"

    def test_dataset_runs_sequentially(self, spec):
        params, arrays = spec.dataset(1)
        machine = Machine(spec.program, params=params, arrays=arrays)
        result = machine.run()
        assert result.work > 0
        for loop in spec.loops:
            assert result.loop_trips.get(loop.label, 0) > 0, (
                f"{spec.name}: {loop.label} never iterated"
            )

    def test_dataset_scales(self, spec):
        p1, a1 = spec.dataset(1)
        p2, a2 = spec.dataset(2)
        w1 = Machine(spec.program, params=p1, arrays=a1).run().work
        w2 = Machine(spec.program, params=p2, arrays=a2).run().work
        assert w2 > w1

    def test_metadata_ranges(self, spec):
        assert 0 < spec.sc <= 1.0
        assert 0 <= spec.scrt <= 1.0
        for loop in spec.loops:
            assert 0 < loop.lsc <= 1.0
            assert loop.gr_ms > 0


def test_suite_sizes():
    # The paper's "26 benchmarks" counts gamess as analyzed but not
    # measured; we model it too, giving 27 specs across three suites.
    assert len(ALL_BENCHMARKS) == 27
    suites = {}
    for spec in ALL_BENCHMARKS:
        suites.setdefault(spec.suite, []).append(spec.name)
    assert len(suites["perfect"]) == 10
    assert len(suites["spec92"]) == 7
    assert len(suites["spec2000"]) == 10


def test_lookup():
    assert get_benchmark("dyfesm").name == "dyfesm"
    with pytest.raises(KeyError):
        get_benchmark("nonexistent")


def test_unique_loop_labels_within_benchmark():
    for spec in ALL_BENCHMARKS:
        labels = [l.label for l in spec.loops]
        assert len(labels) == len(set(labels)), spec.name
