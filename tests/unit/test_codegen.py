"""Unit tests for the Section 5 test-schedule generation."""

from repro.core import HybridAnalyzer, analyze_loop
from repro.core.codegen import format_schedule, generate_schedule
from repro.ir import parse_program
from repro.workloads import get_benchmark


def _plan(body, decls="param N, K1, K2\narray A(512), B(512)"):
    prog = parse_program(f"program t\n{decls}\n\nmain\n{body}\nend\n")
    return analyze_loop(prog, "l")


class TestSchedule:
    def test_cheapest_first(self):
        spec = get_benchmark("dyfesm")
        plan = HybridAnalyzer(spec.program).analyze("solvh_do20")
        schedule = generate_schedule(plan)
        ranks = [0 if t.complexity == "O(1)" else (1 if t.complexity == "O(N)" else 2)
                 for t in schedule.tests]
        assert ranks == sorted(ranks)

    def test_static_loop_has_no_tests(self):
        plan = _plan("""
  do i = 1, N @ l
    A[i] = B[i] + 1
  end
""")
        schedule = generate_schedule(plan)
        assert not schedule.tests
        assert not schedule.precomputed

    def test_predicate_loop_lists_inputs(self):
        plan = _plan("""
  do i = 1, N @ l
    A[K1 + i] = A[K2 + i] + 1
  end
""")
        schedule = generate_schedule(plan)
        assert schedule.tests
        all_inputs = set()
        for t in schedule.tests:
            all_inputs |= t.inputs
        assert {"K1", "K2"} <= all_inputs

    def test_parallel_reduction_marked(self):
        plan = _plan("""
  do i = 1, N @ l
    A[B[i] + 1] = A[B[i] + 1] + 1
  end
""")
        schedule = generate_schedule(plan)
        on = [t for t in schedule.tests if t.complexity != "O(1)"]
        assert on and all(t.parallel_reduction for t in on)

    def test_civ_precompute_listed(self):
        spec = get_benchmark("track")
        plan = HybridAnalyzer(spec.program).analyze("extend_do400")
        schedule = generate_schedule(plan)
        assert any(name.startswith("$civ_") for name in schedule.precomputed)
        assert any(name.startswith("$trips_") for name in schedule.precomputed)

    def test_bounds_comp_listed(self):
        spec = get_benchmark("gromacs")
        plan = HybridAnalyzer(spec.program).analyze("inl1130_do1")
        schedule = generate_schedule(plan)
        assert "F" in schedule.bounds_comp

    def test_format_is_printable(self):
        spec = get_benchmark("dyfesm")
        plan = HybridAnalyzer(spec.program).analyze("solvh_do20")
        text = format_schedule(generate_schedule(plan))
        assert "runtime tests for loop solvh_do20" in text
        assert "run parallel ELSE run sequential" in text

    def test_schedule_is_deduplicated(self):
        """A predicate stage shared between the flow and output cascades
        of one array (or repeated across stages) is emitted once per
        (array, kind, complexity)."""
        spec = get_benchmark("dyfesm")
        plan = HybridAnalyzer(spec.program).analyze("solvh_do20")
        schedule = generate_schedule(plan)
        keys = [(t.array, t.kind, t.complexity) for t in schedule.tests]
        assert len(keys) == len(set(keys))

    def test_ranks_are_dense_and_ordered(self):
        spec = get_benchmark("dyfesm")
        plan = HybridAnalyzer(spec.program).analyze("solvh_do20")
        schedule = generate_schedule(plan)
        assert [t.rank for t in schedule.tests] == sorted(
            t.rank for t in schedule.tests
        )

    def test_cheapest_first_synthetic(self):
        """A loop with both an O(1)-testable offset pair and an
        indirection-driven stage orders O(1) before the rest."""
        plan = _plan("""
  do i = 1, N @ l
    A[K1 + i] = A[K2 + i] + B[B[i] + 1]
  end
""")
        schedule = generate_schedule(plan)
        labels = schedule.ordered_kinds()
        assert labels == sorted(labels, key=lambda l: {"O(1)": 0, "O(N)": 1}.get(l, 2))

    def test_stable_across_hash_consing_runs(self):
        """Cold-start and warm-cache analysis must emit bit-identical
        schedules: clear every interning/memo table, re-parse, re-plan,
        and compare the full RuntimeTest lists."""
        from repro.symbolic.intern import clear_caches

        def build():
            prog = parse_program(
                "program t\nparam N, K1, K2\narray A(512), B(512)\n\nmain\n"
                "  do i = 1, N @ l\n"
                "    A[K1 + i] = A[K2 + i] + B[i]\n"
                "  end\nend\nend\n"
            )
            return generate_schedule(analyze_loop(prog, "l"))

        warm = build()
        clear_caches()
        cold = build()
        assert cold.tests == warm.tests
        assert cold.precomputed == warm.precomputed
        assert cold.bounds_comp == warm.bounds_comp
        assert cold.exact_fallback == warm.exact_fallback
        assert format_schedule(cold) == format_schedule(warm)
