"""The ``repro-eval top`` dashboard rendering, pinned against
synthetic frames (no socket, no terminal)."""

from repro.api import MetricsFrame
from repro.server import render_frame
from repro.server.metrics import _BUCKET_EDGES
from repro.server.top import _bar, _fmt_s, _window_quantile


def _frame(**overrides):
    stream = {
        "counters": {
            "completed": 20,
            "shed": 2,
            "coalesced": 1,
            "warm_hits": 3,
            "requests": {"analyze": 15, "execute": 7, "stats": 0,
                         "subscribe": 0, "unsubscribe": 0},
            "errors": {"overloaded": 2},
            "tiers": {"tier0": 4, "tier1": 1},
            "speculation": {"commits": 2, "rollbacks": 1},
        },
        "gauges": {"inflight": 3, "connections": 2, "max_inflight": 16,
                   "queue_depth": [4, 0, 1]},
        "hot_shards": None,
        "latency": {"buckets": {"10": 18, "14": 2}, "count": 20,
                    "invalid": 0, "max_s": 0.012, "overflow": 0,
                    "sum_s": 0.06},
        "topology": "threads",
        "uptime_s": 12.5,
    }
    stream.update(overrides.pop("stream", {}))
    defaults = dict(seq=3, stream=stream, elapsed_s=2.0, final=False,
                    history=[])
    defaults.update(overrides)
    return MetricsFrame(**defaults)


class TestHelpers:
    def test_bar_clamps_and_fills(self):
        assert _bar(0, 10, width=4) == "[....]"
        assert _bar(5, 10, width=4) == "[##..]"
        assert _bar(50, 10, width=4) == "[####]"
        assert _bar(1, 0, width=4) == "[....]"  # no capacity: empty

    def test_fmt_s_units(self):
        assert _fmt_s(0.00005).endswith("us")
        assert _fmt_s(0.005).endswith("ms")
        assert _fmt_s(2.5) == "2.50s"

    def test_window_quantile_over_sparse_deltas(self):
        assert _window_quantile({}, 0.5) == 0.0
        # all mass in one bucket: estimates interpolate within the
        # bucket (monotone in q, never past the bucket's upper edge)
        p50 = _window_quantile({"10": 5}, 0.5)
        p99 = _window_quantile({"10": 5}, 0.99)
        assert 0 < p50 <= p99 <= _BUCKET_EDGES[10]
        assert p50 > _BUCKET_EDGES[9]
        # mass split: p95 lands in the upper bucket
        assert _window_quantile({"10": 90, "20": 10}, 0.95) > \
            _window_quantile({"10": 90, "20": 10}, 0.50)


class TestRenderFrame:
    def test_threads_frame_content(self):
        text = render_frame(_frame(), "127.0.0.1:7070")
        assert "repro-eval top -- 127.0.0.1:7070" in text
        assert "topology=threads" in text
        assert "frame=3" in text
        assert "(final)" not in text
        # rates over the 2.0s window: 22 requests -> 11.0/s, 20
        # completed -> 10.0/s, 2 shed -> 1.0/s
        assert "requests      11.0/s" in text
        assert "completed     10.0/s" in text
        assert "shed           1.0/s" in text
        assert "coalesced" in text  # threads tier third row
        assert "max_inflight=16" in text
        # one bar per worker, labeled, with the raw depth
        assert "w0" in text and "w2" in text
        assert "[########################] 4" in text
        assert "latency window: n=20" in text
        assert "+4 tier0" in text and "+2 commit" in text
        # no hot-shard line on the threads tier, no history line
        assert "hot shards" not in text
        assert "history" not in text

    def test_final_frame_and_history_annotations(self):
        frame = _frame(
            seq=0, final=True, elapsed_s=0.0,
            history=[{"seq": 7}, {"seq": 8}],
        )
        text = render_frame(frame, "x:1")
        assert "(final)" in text
        assert "first frame: no window yet" in text
        assert "history: 2 ring sample(s), seq 7..8" in text

    def test_multiproc_frame_content(self):
        frame = _frame(stream={
            "topology": "multiproc",
            "counters": {
                "completed": 10, "shed": 0, "rerouted": 4, "fanouts": 2,
                "requests": {"analyze": 10}, "errors": {},
            },
            "gauges": {"inflight": 1, "connections": 1,
                       "backends_live": 2, "backend_inflight": [3, 1]},
            "hot_shards": {"hot_digests": 1, "hot_rps_threshold": 5.0,
                           "max_rate": 9.5, "tracked": 12, "window_s": 1.0},
        })
        text = render_frame(frame, "x:1")
        assert "topology=multiproc" in text
        assert "rerouted" in text and "fanouts" in text
        assert "coalesced" not in text
        assert "backends_live=2" in text
        assert "backend in-flight:" in text
        assert "b0" in text and "b1" in text
        assert "hot shards: 1 hot (>= 5.0 rps, max 9.5 rps, tracking 12)" \
            in text

    def test_render_is_ansi_free(self):
        assert "\x1b" not in render_frame(_frame(), "x:1")
