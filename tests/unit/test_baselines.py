"""Unit tests for the baseline compiler model and classical tests."""

from repro.baselines import (
    StaticAffineCompiler,
    banerjee_test,
    gcd_test,
    range_test,
)
from repro.ir import parse_program
from repro.symbolic import ArrayRef, sym


class TestGcd:
    def test_independent(self):
        # 2i and 2j+1: parities differ.
        assert gcd_test(2, 0, 2, 1).independent

    def test_dependent_possible(self):
        assert not gcd_test(2, 0, 2, 2).independent

    def test_constant_subscripts(self):
        assert gcd_test(0, 3, 0, 5).independent
        assert not gcd_test(0, 3, 0, 3).independent


class TestBanerjee:
    def test_out_of_range(self):
        # i vs j + 100 over [1, 10]: difference 100 unattainable.
        assert banerjee_test(1, 0, 1, 100, 1, 10).independent

    def test_in_range(self):
        assert not banerjee_test(1, 0, 1, 5, 1, 10).independent

    def test_empty_space(self):
        assert banerjee_test(1, 0, 1, 0, 5, 4).independent

    def test_negative_coefficients(self):
        # -i vs j over [1,4]: -i - j in [-8, -2]; diff 0 unattainable.
        assert banerjee_test(-1, 0, 1, 0, 1, 4).independent


class TestRangeTest:
    def test_disjoint_blocks(self):
        i = sym("i")
        v = range_test(4 * i, 4 * i + 3, "i", 1, sym("N"))
        assert v.independent

    def test_overlapping_blocks(self):
        i = sym("i")
        v = range_test(2 * i, 2 * i + 3, "i", 1, sym("N"))
        assert not v.independent

    def test_decreasing(self):
        i = sym("i")
        v = range_test(-4 * i, -4 * i + 3, "i", 1, sym("N"))
        assert v.independent

    def test_monotone_prefix_ranges(self):
        i = sym("i")
        lo = ArrayRef("$c", [i]) + 1
        hi = ArrayRef("$c", [i + 1]).as_expr()
        v = range_test(lo, hi, "i", 1, sym("N"), monotone=frozenset({"$c"}))
        assert v.independent


BASE_SRC = """
program p
param N, K1, K2
array A(512), B(512)

subroutine f(X[], i)
  X[i] = i
end

main
  do i = 1, N @ static_loop
    A[i] = B[i] + 1
  end
  do i = 1, N @ symbolic_loop
    A[K1 + i] = A[K2 + i] + 1
  end
  do i = 1, N @ call_loop
    call f(A[], i)
  end
  t = 0
  do i = 1, N @ scalar_loop
    t = t * 2 + B[i]
    A[i] = t
  end
end
"""


class TestStaticAffineCompiler:
    def test_static_loop_parallelized(self):
        comp = StaticAffineCompiler(parse_program(BASE_SRC))
        assert comp.analyze("static_loop").parallel

    def test_runtime_test_refused(self):
        comp = StaticAffineCompiler(parse_program(BASE_SRC))
        v = comp.analyze("symbolic_loop")
        assert not v.parallel
        assert "runtime" in v.reason or "statically" in v.reason

    def test_call_refused(self):
        """No interprocedural analysis: calls are opaque."""
        comp = StaticAffineCompiler(parse_program(BASE_SRC))
        assert not comp.analyze("call_loop").parallel

    def test_scalar_recurrence_refused(self):
        comp = StaticAffineCompiler(parse_program(BASE_SRC))
        assert not comp.analyze("scalar_loop").parallel

    def test_unknown_loop(self):
        comp = StaticAffineCompiler(parse_program(BASE_SRC))
        assert not comp.analyze("missing").parallel
