"""Unit tests for the simulated runtime: scheduler, speculation,
inspector, and the conditional-parallelization executor."""

import pytest

from repro.core import analyze_loop
from repro.ir import parse_program
from repro.ir.interp import IterationRecord, LoopTrace
from repro.runtime import (
    CostModel,
    HybridExecutor,
    Inspector,
    evaluate_usr_cost,
    lrpd_test,
    schedule_parallel,
)


class TestScheduler:
    def test_single_proc(self):
        t = schedule_parallel([10, 10, 10, 10], 1, CostModel())
        assert t.time == 40 and t.spawn == 0

    def test_perfect_split(self):
        cost = CostModel(spawn_overhead=5)
        t = schedule_parallel([10] * 4, 4, cost)
        assert t.time == 15  # 10 + spawn

    def test_imbalance(self):
        cost = CostModel(spawn_overhead=0)
        t = schedule_parallel([100, 1, 1, 1], 2, cost)
        assert t.time == 101  # contiguous blocks: [100,1] | [1,1]

    def test_more_procs_than_iterations(self):
        cost = CostModel(spawn_overhead=0, bandwidth_knee=64)
        t = schedule_parallel([10, 10], 8, cost)
        assert t.time == 10

    def test_bandwidth_knee(self):
        cost = CostModel(spawn_overhead=0, bandwidth_knee=8,
                         bandwidth_efficiency=0.5)
        t8 = schedule_parallel([1.0] * 64, 8, cost)
        t16 = schedule_parallel([1.0] * 64, 16, cost)
        # 16 procs still helps but far from 2x over 8.
        assert t16.time < t8.time
        assert t16.time > t8.time / 2

    def test_empty(self):
        assert schedule_parallel([], 4, CostModel()).time == 0


def _trace(records):
    return LoopTrace("t", records)


class TestLRPD:
    def test_independent_passes(self):
        recs = [
            IterationRecord(1, writes={"A": {1}}, exposed_reads={"B": {5}}),
            IterationRecord(2, writes={"A": {2}}, exposed_reads={"B": {5}}),
        ]
        result = lrpd_test(_trace(recs))
        assert result.success
        assert result.traced_accesses == 4

    def test_flow_conflict_fails(self):
        recs = [
            IterationRecord(1, writes={"A": {1}}),
            IterationRecord(2, exposed_reads={"A": {1}}),
        ]
        assert not lrpd_test(_trace(recs)).success

    def test_output_conflict_privatized(self):
        recs = [
            IterationRecord(1, writes={"A": {1}}),
            IterationRecord(2, writes={"A": {1}}),
        ]
        result = lrpd_test(_trace(recs))
        assert result.success
        assert "A" in result.privatized

    def test_output_conflict_without_privatization(self):
        recs = [
            IterationRecord(1, writes={"A": {1}}),
            IterationRecord(2, writes={"A": {1}}),
        ]
        assert not lrpd_test(_trace(recs), privatize=False).success

    def test_own_read_after_write_ok(self):
        recs = [
            IterationRecord(1, writes={"A": {1}}, exposed_reads={"A": set()}),
            IterationRecord(2, writes={"A": {2}}),
        ]
        assert lrpd_test(_trace(recs)).success


class TestInspector:
    def test_cost_proportional_to_sets(self):
        from repro.lmad import interval
        from repro.usr import usr_leaf, usr_subtract

        u = usr_subtract(usr_leaf(interval(1, 100)), usr_leaf(interval(0, 100)))
        out, cost = evaluate_usr_cost(u, {})
        assert out == set()
        assert cost >= 200  # both operand sets materialized

    def test_memoization(self):
        from repro.lmad import interval
        from repro.symbolic import sym
        from repro.usr import usr_leaf, usr_subtract

        u = usr_subtract(
            usr_leaf(interval(1, sym("N"))), usr_leaf(interval(0, sym("N")))
        )
        insp = Inspector()
        r1 = insp.check_empty(u, {"N": 50})
        r2 = insp.check_empty(u, {"N": 50})
        r3 = insp.check_empty(u, {"N": 60})
        assert r1.cost > 0 and not r1.memoized
        assert r2.cost == 0 and r2.memoized
        assert not r3.memoized  # different inputs: fresh evaluation


def _build(src):
    return parse_program(src)


EXEC_SRC = """
program p
param N, OFF
array A(256), B(256)
main
  do i = 1, N @ l
    A[OFF + i] = B[i] + 1
  end
end
"""


class TestExecutor:
    def test_parallel_correct(self):
        prog = _build(EXEC_SRC)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        r = ex.run({"N": 8, "OFF": 0}, {"B": list(range(256))})
        assert r.parallel and r.correct
        assert r.seq_work == sum(r.iteration_costs)

    def test_speedup_monotone_in_procs(self):
        prog = _build(EXEC_SRC)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        r = ex.run({"N": 32, "OFF": 0}, {"B": [0] * 256})
        cost = CostModel(spawn_overhead=1)
        assert r.speedup(4, cost) > r.speedup(2, cost) > 1.0

    def test_privatization_with_output_deps(self):
        src = """
program p
param N
array A(64), B(64), T(8)
main
  do i = 1, N @ l
    do j = 1, 4
      T[j] = B[(i-1)*4 + j]
    end
    do j = 1, 4
      A[(i-1)*4 + j] = T[j] * 2
    end
  end
end
"""
        prog = _build(src)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        r = ex.run({"N": 8}, {"B": list(range(64))})
        assert r.parallel and r.correct
        assert r.decisions["T"].strategy == "private"

    def test_reduction_merging(self):
        src = """
program p
param N
array A(64), B(64), W(64)
main
  do i = 1, N @ l
    A[B[i]] = A[B[i]] + W[i]
  end
end
"""
        prog = _build(src)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        # Colliding targets: the reduction transform must still be exact.
        arrays = {"B": [1, 2, 1, 2, 1, 2, 1, 2] + [1] * 56,
                  "W": [1] * 64}
        r = ex.run({"N": 8}, arrays)
        assert r.parallel and r.correct
        assert r.decisions["A"].strategy == "reduction"

    def test_scalar_dep_runs_sequential(self):
        src = """
program p
param N
array A(64), B(64)
main
  t = 0
  do i = 1, N @ l
    t = t * 2 + B[i]
    A[i] = t
  end
end
"""
        prog = _build(src)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        r = ex.run({"N": 8}, {"B": [1] * 64})
        assert not r.parallel
        assert r.correct

    def test_speculation_on_independent_index_arrays(self):
        src = """
program p
param N
array Z(128), KX(64), KZ(64), W(64)
main
  do n = 1, N @ l
    Z[KX[n]] = W[n] + Z[KZ[n]]
  end
end
"""
        prog = _build(src)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan, exact_strategy="tls")
        kx = [2 * i + 1 for i in range(64)]
        kz = [2 * i + 2 for i in range(64)]
        r = ex.run({"N": 8}, {"KX": kx, "KZ": kz, "W": [3] * 64})
        assert r.parallel and r.correct
        assert r.used_speculation

    def test_misspeculation_detected(self):
        src = """
program p
param N
array Z(128), KX(64), KZ(64), W(64)
main
  do n = 1, N @ l
    Z[KX[n]] = W[n] + Z[KZ[n]]
  end
end
"""
        prog = _build(src)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan, exact_strategy="tls")
        # Reads hit earlier iterations' writes: genuine flow dependence.
        kx = [i + 1 for i in range(64)]
        kz = [max(1, i) for i in range(64)]
        r = ex.run({"N": 8}, {"KX": kx, "KZ": kz, "W": [3] * 64})
        assert not r.parallel
        assert r.correct  # ran sequentially, result untouched

    def test_civ_comp_overhead_charged(self):
        src = """
program p
param N
array A(256), NSP(64)
main
  civ = 0
  do i = 1, N @ l
    if NSP[i] > 0 then
      do j = 1, NSP[i]
        A[civ + j] = i
      end
      civ = civ + NSP[i]
    end
  end
end
"""
        prog = _build(src)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        r = ex.run({"N": 8}, {"NSP": [2] * 64})
        assert r.parallel and r.correct
        assert r.civ_overhead > 0

    def test_bad_strategy_rejected(self):
        prog = _build(EXEC_SRC)
        plan = analyze_loop(prog, "l")
        with pytest.raises(ValueError):
            HybridExecutor(prog, plan, exact_strategy="nope")

    def test_rtov_definition(self):
        prog = _build(EXEC_SRC)
        plan = analyze_loop(prog, "l")
        ex = HybridExecutor(prog, plan)
        r = ex.run({"N": 16, "OFF": 0}, {"B": [0] * 256})
        cost = CostModel(spawn_overhead=1)
        assert 0.0 <= r.rtov(4, cost) < 1.0
