"""The waterfall renderer: pure text, pinned against synthetic trace
documents.

``repro-eval trace`` runs headless in CI, so the renderer emits plain
text only (no ANSI control codes), tree depth is shown by indentation,
orphaned spans (a parent outside the document) degrade to extra roots
rather than vanishing, and the bar geometry stays inside the timeline.
"""

import io

from repro.server import render_recent, render_waterfall
from repro.server.traceview import _fmt_attrs, _fmt_s


def _span(span_id, parent, name, start, end, status="ok", attrs=None):
    return {
        "span_id": span_id, "parent_span_id": parent, "name": name,
        "start_s": start, "end_s": end, "duration_s": max(0.0, end - start),
        "status": status, "attrs": attrs or {},
    }


def _trace():
    return {
        "trace_id": "t" * 32,
        "root_span_id": "root",
        "status": "ok",
        "sampled": True,
        "start_s": 100.0,
        "duration_s": 0.4,
        "keep": "sampled",
        "spans": [
            _span("root", None, "request", 100.0, 100.4,
                  attrs={"verb": "execute", "tier": "threads"}),
            _span("q", "root", "queue_wait", 100.0, 100.05),
            _span("c", "root", "compile", 100.05, 100.25,
                  attrs={"cached": False,
                         "phases": {"summarize": 0.08, "cascade": 0.05}}),
            _span("e", "root", "execute", 100.25, 100.4,
                  attrs={"backend_used": "thread", "chunks": 4}),
        ],
    }


class TestFormatting:
    def test_latency_units(self):
        assert _fmt_s(0.000012) == "12us"
        assert _fmt_s(0.0123) == "12.3ms"
        assert _fmt_s(1.5) == "1.50s"

    def test_attrs_sorted_with_phases_bracketed(self):
        text = _fmt_attrs({"verb": "execute", "cached": False,
                           "phases": {"summarize": 0.08, "cascade": 0.05}})
        assert text.startswith("cached=False verb=execute ")
        assert text.endswith("phases[cascade=50.0ms,summarize=80.0ms]")

    def test_empty_phases_omitted(self):
        assert _fmt_attrs({"phases": {}, "a": 1}) == "a=1"


class TestRenderWaterfall:
    def test_header_and_tree_shape(self):
        text = render_waterfall(_trace())
        lines = text.splitlines()
        assert lines[0] == (
            f"trace {'t' * 32}  status=ok  sampled=True"
            "  duration=400.0ms  spans=4  kept=sampled"
        )
        # children are indented under the root, sorted by start time
        names = [line.split("|")[0].strip() for line in lines[1:]]
        assert names == ["request", "queue_wait", "compile", "execute"]
        assert lines[1].startswith("  request")
        assert lines[2].startswith("    queue_wait")  # depth 1 -> 2 spaces more

    def test_no_ansi_and_bars_fit_timeline(self):
        text = render_waterfall(_trace(), width=20)
        assert "\x1b" not in text
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 20
            assert set(bar) <= {" ", "#"}
            assert "#" in bar

    def test_bar_offsets_follow_start_times(self):
        lines = render_waterfall(_trace(), width=20).splitlines()
        offsets = [line.split("|")[1].index("#") for line in lines[1:]]
        # request and queue_wait start together; compile and execute later
        assert offsets[0] == offsets[1] == 0
        assert offsets[1] < offsets[2] < offsets[3]

    def test_phase_attribution_rendered_on_compile_line(self):
        compile_line = [
            line for line in render_waterfall(_trace()).splitlines()
            if line.strip().startswith("compile")
        ][0]
        assert "phases[cascade=50.0ms,summarize=80.0ms]" in compile_line
        assert "cached=False" in compile_line

    def test_orphan_span_becomes_a_root_not_lost(self):
        doc = _trace()
        doc["spans"].append(
            _span("stitched", "not-in-doc", "request", 100.1, 100.2,
                  attrs={"tier": "backend"})
        )
        text = render_waterfall(doc)
        assert text.count("request") == 2  # both trees rendered
        assert len(text.splitlines()) == 1 + 5

    def test_error_status_and_truncation_surface(self):
        doc = _trace()
        doc["status"] = "error"
        doc["spans_truncated"] = 3
        doc["spans"][3]["status"] = "error"
        doc["spans"][3]["attrs"] = {"error": "backend_died", "retryable": True}
        text = render_waterfall(doc)
        assert "status=error" in text.splitlines()[0]
        assert "truncated=+3" in text.splitlines()[0]
        assert any("error  " in line and "backend_died" in line
                   for line in text.splitlines()[1:])

    def test_empty_trace_renders_placeholder(self):
        text = render_waterfall({"trace_id": "x", "status": "ok",
                                 "duration_s": 0.0, "spans": []})
        assert text.splitlines()[1] == "  (no spans)"

    def test_zero_duration_spans_still_draw_a_tick(self):
        doc = _trace()
        doc["spans"].append(_span("r", "root", "route", 100.01, 100.01))
        for line in render_waterfall(doc).splitlines()[1:]:
            assert "#" in line.split("|")[1]


class TestRenderRecent:
    def test_table_lists_newest_first_with_store_line(self):
        store = {"traces": 2, "max_traces": 512, "spans": 8,
                 "max_spans": 8192, "offered": 10, "kept": 2,
                 "sampled_out": 8, "evicted": 0}
        older = _trace()
        older["trace_id"] = "o" * 32
        text = render_recent([_trace(), older], store)
        lines = text.splitlines()
        assert lines[0] == ("trace store: 2/512 trace(s), 8/8192 span(s), "
                            "offered=10 kept=2 sampled_out=8 evicted=0")
        assert lines[1].split() == ["trace_id", "status", "keep", "dur",
                                    "spans", "verb"]
        assert lines[3].startswith("t" * 32) and lines[4].startswith("o" * 32)
        # the verb column comes from the root span's attrs
        assert lines[3].rstrip().endswith("execute")

    def test_empty_store_renders_placeholder(self):
        text = render_recent([], None)
        assert text.splitlines()[-1] == "(no traces kept)"
        assert "trace store:" not in text

    def test_writes_compose_into_stream(self):
        out = io.StringIO()
        out.write(render_recent([_trace()], None) + "\n")
        assert out.getvalue().endswith("execute\n")
