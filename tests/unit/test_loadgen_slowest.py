"""The loadgen's v3 summary additions: the slowest-requests table and
the client-minted force-sampled trace context.

``--trace`` exists so an operator can correlate a slow loadgen request
with its server-side trace: every request carries a fresh trace id,
the summary names the top-K slowest with their verbs and trace ids,
and those ids are exactly what ``repro-eval trace <id>`` accepts.
"""

import random

import pytest

from repro.api import AnalyzeRequest, EngineConfig, ExecuteRequest
from repro.server import ServerThread, build_mix, make_request
from repro.server.loadgen import SERVING_VERSION, SLOWEST_K, run_load


@pytest.fixture(scope="module")
def hosted():
    thread = ServerThread(
        workers=2, engine_config=EngineConfig(use_disk_cache=False)
    ).start()
    yield thread
    thread.stop()


class TestForceTrace:
    def test_untraced_by_default(self):
        mix = build_mix(seed=5, programs=3)
        rng = random.Random(5)
        for _ in range(8):
            assert make_request(rng, mix, analyze_fraction=0.5).trace is None

    def test_force_trace_mints_fresh_sampled_contexts(self):
        mix = build_mix(seed=5, programs=3)
        rng = random.Random(5)
        seen = set()
        for _ in range(8):
            request = make_request(
                rng, mix, analyze_fraction=0.5, force_trace=True
            )
            assert isinstance(request, (AnalyzeRequest, ExecuteRequest))
            trace = request.trace
            assert trace["sampled"] is True
            assert len(trace["trace_id"]) == 32
            seen.add(trace["trace_id"])
        assert len(seen) == 8  # one trace per request, never reused


class TestSlowestSummary:
    def test_version_three_summary_carries_slowest(self, hosted):
        host, port = hosted.address
        summary = run_load(
            host, port, clients=2, requests=12, seed=3, timeout=60.0,
        )
        assert SERVING_VERSION == 3
        slowest = summary["slowest"]
        assert 1 <= len(slowest) <= SLOWEST_K
        assert all(set(e) == {"latency_s", "trace_id", "verb"}
                   for e in slowest)
        latencies = [e["latency_s"] for e in slowest]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] == summary["latency"]["max_s"]
        assert all(e["verb"] in ("analyze", "execute") for e in slowest)
        # untraced runs still report the table, with null trace ids
        assert all(e["trace_id"] is None for e in slowest)

    def test_forced_trace_ids_surface_in_slowest(self, hosted):
        host, port = hosted.address
        summary = run_load(
            host, port, clients=2, requests=12, seed=4, timeout=60.0,
            force_trace=True,
        )
        for entry in summary["slowest"]:
            assert isinstance(entry["trace_id"], str)
            assert len(entry["trace_id"]) == 32

    def test_multiplexed_and_open_modes_report_slowest(self, hosted):
        host, port = hosted.address
        multiplexed = run_load(
            host, port, clients=4, requests=12, seed=5, timeout=60.0,
            multiplex=2, force_trace=True,
        )
        assert len(multiplexed["slowest"]) >= 1
        open_loop = run_load(
            host, port, clients=2, requests=10, seed=6, timeout=60.0,
            mode="open", rate=200.0, force_trace=True,
        )
        assert len(open_loop["slowest"]) >= 1
        for summary in (multiplexed, open_loop):
            for entry in summary["slowest"]:
                assert len(entry["trace_id"]) == 32
