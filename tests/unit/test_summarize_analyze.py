"""Unit tests for the summarizer and the hybrid analyzer on small kernels."""

import pytest

from repro.core import HybridAnalyzer, analyze_loop
from repro.ir import parse_program, summarize_loop


def _prog(body, decls="param N\narray A(512), B(512), C(512)"):
    return parse_program(f"program t\n{decls}\n\nmain\n{body}\nend\n")


class TestSummarizer:
    def test_simple_write_read(self):
        prog = _prog("""
  do i = 1, N @ l
    A[i] = B[i] + 1
  end
""")
        inp = summarize_loop(prog, "l")
        assert set(inp.summaries) == {"A", "B"}
        a = inp.summaries["A"]
        assert a.aggregate.wf.evaluate({"N": 3}) == {1, 2, 3}
        b = inp.summaries["B"]
        assert b.aggregate.ro.evaluate({"N": 3}) == {1, 2, 3}

    def test_gated_access(self):
        prog = _prog("""
  do i = 1, N @ l
    if C[i] > 0 then
      A[i] = 1
    end
  end
""")
        inp = summarize_loop(prog, "l")
        wf = inp.summaries["A"].aggregate.wf
        assert wf.evaluate({"N": 3, "C": [1, 0, 1]}) == {1, 3}

    def test_reduction_detected(self):
        prog = _prog("""
  do i = 1, N @ l
    A[B[i]] = A[B[i]] + C[i]
  end
""")
        inp = summarize_loop(prog, "l")
        assert "A" in inp.reductions
        assert not inp.reductions["A"].has_other_writes

    def test_ext_rred_shape(self):
        prog = _prog("""
  do i = 1, N @ l
    A[i] = C[i]
    A[256 + B[i]] = A[256 + B[i]] + 1
  end
""")
        inp = summarize_loop(prog, "l")
        assert inp.reductions["A"].has_other_writes

    def test_civ_detection(self):
        prog = _prog("""
  civ = 0
  do i = 1, N @ l
    if B[i] > 0 then
      do j = 1, B[i]
        A[civ + j] = i
      end
      civ = civ + B[i]
    end
  end
""")
        inp = summarize_loop(prog, "l")
        assert len(inp.civs) == 1
        assert inp.civs[0].name == "civ"
        assert inp.civs[0].prefix_array in inp.monotone_arrays

    def test_scalar_flow_dep_detected(self):
        prog = _prog("""
  t = 0
  do i = 1, N @ l
    t = t * 2 + B[i]
    A[i] = t
  end
""")
        inp = summarize_loop(prog, "l")
        assert "t" in inp.scalar_flow_deps

    def test_local_scalar_not_dep(self):
        prog = _prog("""
  do i = 1, N @ l
    t = B[i] * 2
    A[i] = t
  end
""")
        inp = summarize_loop(prog, "l")
        assert "t" not in inp.scalar_flow_deps

    def test_interprocedural_translation(self):
        prog = parse_program("""
program t
param N
array A(512)
subroutine f(X[], v)
  X[1] = v
  X[2] = v + 1
end
main
  do i = 1, N @ l
    call f(A[] + (i-1)*2, i)
  end
end
""")
        inp = summarize_loop(prog, "l")
        wf = inp.summaries["A"].aggregate.wf
        assert wf.evaluate({"N": 3}) == {1, 2, 3, 4, 5, 6}

    def test_intraprocedural_mode_clobbers(self):
        prog = parse_program("""
program t
param N
array A(512)
subroutine f(X[])
  X[1] = 0
end
main
  do i = 1, N @ l
    call f(A[] + i)
  end
end
""")
        inp = summarize_loop(prog, "l", interprocedural=False)
        assert inp.approximate

    def test_while_loop_summary(self):
        prog = _prog("""
  i = 1
  while i <= N @ l
    A[i] = 2
    i = i + 1
  end
""")
        inp = summarize_loop(prog, "l")
        assert inp.is_while
        assert inp.trip_symbol is not None


class TestAnalyzer:
    def test_static_parallel(self):
        prog = _prog("""
  do i = 1, N @ l
    A[i] = B[i] + B[i+1]
  end
""")
        plan = analyze_loop(prog, "l")
        assert plan.classification() == "STATIC-PAR"
        assert plan.static_parallel()

    def test_privatization_plan(self):
        prog = _prog("""
  do i = 1, N @ l
    do j = 1, 4
      C[j] = B[(i-1)*4 + j]
    end
    do j = 1, 4
      A[(i-1)*4 + j] = C[j]
    end
  end
""")
        plan = analyze_loop(prog, "l")
        assert plan.arrays["C"].transform == "private"
        assert "PRIV" in plan.techniques()
        assert plan.classification() == "STATIC-PAR"

    def test_runtime_flow_predicate(self):
        prog = _prog("""
  do i = 1, N @ l
    A[K1 + i] = A[K2 + i] + 1
  end
""", decls="param N, K1, K2\narray A(512)")
        plan = analyze_loop(prog, "l")
        assert plan.classification().startswith("FI")
        assert plan.arrays["A"].flow is not None

    def test_scalar_dep_is_static_seq(self):
        prog = _prog("""
  t = 0
  do i = 1, N @ l
    t = t * 2 + B[i]
    A[i] = t
  end
""")
        plan = analyze_loop(prog, "l")
        assert plan.classification() == "STATIC-SEQ"

    def test_civ_loop_classified(self):
        prog = _prog("""
  civ = 0
  do i = 1, N @ l
    if B[i] > 0 then
      do j = 1, B[i]
        A[civ + j] = i
      end
      civ = civ + B[i]
    end
  end
""")
        plan = analyze_loop(prog, "l")
        assert plan.classification() == "CIVagg"
        assert "CIV-COMP" in plan.techniques()

    def test_reduction_plan(self):
        prog = _prog("""
  do i = 1, N @ l
    A[B[i]] = A[B[i]] + C[i]
  end
""")
        plan = analyze_loop(prog, "l")
        assert plan.arrays["A"].transform == "reduction"

    def test_monotone_index_reduction_predicate(self):
        prog = _prog("""
  do i = 1, N @ l
    do j = 1, C[i]
      A[B[i] + j] = A[B[i] + j] + 1
    end
  end
""")
        plan = analyze_loop(prog, "l")
        aplan = plan.arrays["A"]
        assert aplan.rred is not None  # the monotonicity O(N) test

    def test_flags_disable_monotonicity(self):
        src = """
  do i = 1, N @ l
    do j = 1, C[i]
      A[B[i] + j] = A[B[i] + j] + 1
    end
  end
"""
        with_mon = HybridAnalyzer(_prog(src)).analyze("l")
        without = HybridAnalyzer(_prog(src), use_monotonicity=False).analyze("l")
        env = {"N": 3, "B": [0, 10, 20] + [0] * 61, "C": [3] * 64, "A": [0] * 512}
        # Monotone index data: only the MON rule can accept at runtime.
        assert with_mon.arrays["A"].rred.evaluate(env).passed
        if without.arrays["A"].rred is not None:
            assert not without.arrays["A"].rred.evaluate(env).passed
