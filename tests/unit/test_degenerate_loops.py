"""Degenerate loop shapes through every layer: zero-trip and
single-iteration DO loops, never-entered WHILE loops, and empty bodies
must analyze and execute without crashing (satellite of the fuzzing PR:
any generator-reachable degenerate shape gets an explicit test)."""

import copy

import pytest

from repro.core import analyze_loop
from repro.ir import Machine, parse_program
from repro.runtime import HybridExecutor


def _program(body, decls="param N\narray A(32), B(32)"):
    return parse_program(f"program t\n{decls}\n\nmain\n{body}\nend\nend\n")


def _execute(program, label="l", params=None, arrays=None, **kwargs):
    params = params or {"N": 0}
    arrays = arrays or {}
    plan = analyze_loop(program, label)
    executor = HybridExecutor(program, plan, **kwargs)
    return executor.run(params, copy.deepcopy(arrays))


class TestInterpreterDegenerate:
    def test_zero_trip_do_constant_bounds(self):
        prog = _program("do i = 5, 2 @ l\n  A[i] = 1\nend\n")
        result = Machine(prog, params={"N": 0}, trace_label="l").run()
        assert result.trace is not None
        assert result.trace.iterations == []
        assert result.loop_trips["l"] == 0
        assert all(v == 0 for v in result.arrays["A"])

    def test_zero_trip_do_param_bound(self):
        prog = _program("do i = 1, N @ l\n  A[i] = 1\nend\n")
        result = Machine(prog, params={"N": 0}, trace_label="l").run()
        assert result.trace.iterations == []
        assert result.loop_work["l"] == 0  # no body work was charged

    def test_single_iteration_do(self):
        prog = _program("do i = 1, N @ l\n  A[i] = i\nend\n")
        result = Machine(prog, params={"N": 1}, trace_label="l").run()
        assert len(result.trace.iterations) == 1
        assert result.arrays["A"][0] == 1
        trace = result.trace
        assert not trace.has_cross_iteration_dependence()

    def test_empty_body_do(self):
        prog = _program("do i = 1, N @ l\nend\n")
        result = Machine(prog, params={"N": 4}, trace_label="l").run()
        assert len(result.trace.iterations) == 4
        assert all(rec.work == 0 for rec in result.trace.iterations)

    def test_never_entered_while(self):
        prog = _program("x = 9\nwhile x < 3 @ l\n  x = x + 1\nend\n")
        result = Machine(prog, params={"N": 0}, trace_label="l").run()
        assert result.trace.iterations == []
        assert result.loop_trips["l"] == 0
        assert result.scalars["x"] == 9

    def test_single_trip_while(self):
        prog = _program("x = 0\nwhile x < 1 @ l\n  x = x + 1\nend\n")
        result = Machine(prog, params={"N": 0}, trace_label="l").run()
        assert len(result.trace.iterations) == 1
        assert result.scalars["x"] == 1


class TestExecutorDegenerate:
    def test_zero_trip_do_executes(self):
        prog = _program("do i = 1, N @ l\n  A[i] = B[i] + 1\nend\n")
        report = _execute(prog, params={"N": 0})
        assert report.correct
        assert report.seq_work == 0.0
        assert report.iteration_costs == []

    def test_zero_trip_constant_bounds_executes(self):
        prog = _program("do i = 5, 2 @ l\n  A[i] = 1\nend\n")
        report = _execute(prog, params={"N": 0})
        assert report.correct

    def test_single_iteration_do_executes(self):
        prog = _program("do i = 1, N @ l\n  A[i] = B[i] + 1\nend\n")
        report = _execute(prog, params={"N": 1}, arrays={"B": list(range(32))})
        assert report.correct
        assert len(report.iteration_costs) == 1

    def test_empty_body_do_executes(self):
        prog = _program("do i = 1, N @ l\nend\n")
        report = _execute(prog, params={"N": 3})
        assert report.correct

    def test_never_entered_while_executes(self):
        prog = _program("x = 9\nwhile x < 3 @ l\n  x = x + 1\nend\n")
        report = _execute(prog)
        assert report.correct
        assert report.seq_work == 0.0

    @pytest.mark.parametrize("strategy", ["inspector", "tls"])
    def test_zero_trip_with_runtime_tests(self, strategy):
        # K-offset subscripts force a cascade; it must evaluate cleanly
        # over an empty iteration space.
        prog = _program(
            "do i = 1, N @ l\n  A[K + i] = A[i] + 1\nend\n",
            decls="param N, K\narray A(64)",
        )
        report = _execute(
            prog, params={"N": 0, "K": 3}, exact_strategy=strategy
        )
        assert report.correct

    def test_degenerate_analysis_classifies(self):
        # Classification must not crash on empty bodies either.
        prog = _program("do i = 1, N @ l\nend\n")
        plan = analyze_loop(prog, "l")
        assert plan.classification() == "STATIC-PAR"
        assert plan.arrays == {}
