"""EnginePool routing and lifecycle, and the engine's LRU compile memo.

Digest routing must be a stable pure function (same digest -> same
shard, across pool instances), reasonably balanced, and 'shared' mode
must round-robin.  The compile memo backing each engine must be LRU
(hot entries survive cold bursts) and safe under concurrent access.
"""

import threading

import pytest

from repro.api import AnalyzeRequest, EngineConfig, JsonDiskCache
from repro.api.engine import _EvictingMemo
from repro.server import EnginePool, PoolClosed, consistent_ring

SOURCE = """
program pool_test
param N
array A(100), B(100)

main
  do i = 1, N @ copy
    A[i] = B[i] + 1
  end
end
"""


def _digests(count):
    return [JsonDiskCache.digest(f"program {i}") for i in range(count)]


class TestConsistentRouting:
    def test_ring_is_deterministic(self):
        assert consistent_ring(4) == consistent_ring(4)
        assert len(consistent_ring(3, vnodes=16)) == 48

    def test_same_digest_same_shard_across_pools(self):
        a = EnginePool(workers=4)
        b = EnginePool(workers=4)
        for digest in _digests(50):
            assert a.shard_for(digest) == b.shard_for(digest)

    def test_routing_is_stable_per_digest(self):
        pool = EnginePool(workers=4)
        for digest in _digests(20):
            first = pool.shard_for(digest)
            assert all(pool.shard_for(digest) == first for _ in range(5))

    def test_every_shard_gets_work(self):
        pool = EnginePool(workers=4)
        shards = {pool.shard_for(d) for d in _digests(200)}
        assert shards == {0, 1, 2, 3}

    def test_balance_within_reason(self):
        pool = EnginePool(workers=4)
        counts = [0, 0, 0, 0]
        for digest in _digests(2000):
            counts[pool.shard_for(digest)] += 1
        assert min(counts) > 2000 / 4 * 0.5  # no starving shard

    def test_shared_mode_round_robins(self):
        pool = EnginePool(workers=3, sharding="shared")
        digest = _digests(1)[0]
        assert [pool.shard_for(digest) for _ in range(6)] == [0, 1, 2, 0, 1, 2]
        # one engine object behind every shard
        assert len({id(pool.engine_for(i)) for i in range(3)}) == 1

    def test_digest_mode_has_private_engines(self):
        pool = EnginePool(workers=3)
        assert len({id(pool.engine_for(i)) for i in range(3)}) == 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EnginePool(workers=0)
        with pytest.raises(ValueError):
            EnginePool(queue_depth=0)
        with pytest.raises(ValueError):
            EnginePool(sharding="banana")


class TestPoolLifecycle:
    def test_serves_after_start_and_rejects_after_stop(self):
        from concurrent.futures import Future

        pool = EnginePool(
            workers=2, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        request = AnalyzeRequest(source=SOURCE, loop="copy")
        digest = JsonDiskCache.digest(SOURCE)
        future = Future()
        pool.submit(pool.shard_for(digest), digest, request, future)
        assert future.result(timeout=60).classification == "STATIC-PAR"
        pool.stop()
        with pytest.raises(PoolClosed):
            pool.submit(0, digest, request, Future())

    def test_restart_after_stop_fails_fast(self):
        pool = EnginePool(
            workers=1, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        pool.stop()
        with pytest.raises(PoolClosed, match="create a new one"):
            pool.start()

    def test_stop_without_drain_fails_pending(self):
        from concurrent.futures import Future

        pool = EnginePool(
            workers=1, engine_config=EngineConfig(use_disk_cache=False)
        )  # never started: queued work stays queued
        future = Future()
        digest = JsonDiskCache.digest(SOURCE)
        pool.submit(0, digest, AnalyzeRequest(source=SOURCE, loop="copy"), future)
        pool.stop(drain=False)
        with pytest.raises(PoolClosed):
            future.result(timeout=5)

    def test_stop_of_never_started_pool_fails_queued_futures(self):
        # drain=True cannot drain without workers; queued futures must
        # fail with PoolClosed instead of being stranded forever
        from concurrent.futures import Future

        pool = EnginePool(
            workers=1, engine_config=EngineConfig(use_disk_cache=False)
        )
        future = Future()
        digest = JsonDiskCache.digest(SOURCE)
        pool.submit(0, digest, AnalyzeRequest(source=SOURCE, loop="copy"), future)
        pool.stop()  # default drain=True
        with pytest.raises(PoolClosed):
            future.result(timeout=5)


class TestEvictingMemoLRU:
    def test_get_touches_entry(self):
        memo = _EvictingMemo("test.lru.touch", max_size=3)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.put("c", 3)
        memo.get("a")  # a becomes most-recent; b is now LRU
        memo.put("d", 4)
        assert memo.get("b") is None
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        assert memo.get("d") == 4

    def test_hot_entry_survives_cold_burst(self):
        memo = _EvictingMemo("test.lru.hot", max_size=8)
        memo.put("hot", "plan")
        for i in range(100):  # cold fuzz-like churn
            memo.put(f"cold-{i}", i)
            memo.get("hot")
        assert memo.get("hot") == "plan"

    def test_overwrite_at_capacity_does_not_evict(self):
        memo = _EvictingMemo("test.lru.overwrite", max_size=2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.put("a", 10)  # same key: no eviction
        assert memo.get("a") == 10
        assert memo.get("b") == 2

    def test_concurrent_put_get_is_safe_and_bounded(self):
        memo = _EvictingMemo("test.lru.threads", max_size=64)
        errors = []

        def pound(tid):
            try:
                for i in range(2000):
                    memo.put((tid, i % 40), i)
                    memo.get((tid, (i * 7) % 40))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=pound, args=(tid,)) for tid in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(memo.data) <= 64
