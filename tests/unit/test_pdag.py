"""Unit tests for the PDAG predicate language, simplification, cascades."""

import pytest

from repro.pdag import (
    EvalStats,
    PAnd,
    PFALSE,
    PLoopAnd,
    POr,
    PTRUE,
    build_cascade,
    p_and,
    p_call,
    p_leaf,
    p_loop_and,
    p_or,
    simplify,
    strengthen_to_depth,
)
from repro.symbolic import ArrayRef, cmp_ge, cmp_gt, cmp_le, cmp_lt, gt0, sym


class TestConstructors:
    def test_true_false_singletons(self):
        from repro.symbolic import FALSE, TRUE

        assert p_leaf(TRUE) is PTRUE
        assert p_leaf(FALSE) is PFALSE

    def test_and_or_folding(self):
        p = p_leaf(gt0(sym("x")))
        assert p_and(PTRUE, p) == p
        assert p_and(PFALSE, p).is_false()
        assert p_or(PFALSE, p) == p
        assert p_or(PTRUE, p).is_true()

    def test_leaf_merging(self):
        a, b = p_leaf(gt0(sym("a"))), p_leaf(gt0(sym("b")))
        combined = p_and(a, b)
        # Adjacent leaves merge down into the boolean layer.
        assert combined.node_count() == 1

    def test_absorption(self):
        a = p_leaf(gt0(sym("a")))
        lp = p_loop_and("i", 1, sym("N"), p_leaf(gt0(sym("i") - sym("a"))))
        assert p_or(lp, p_and(lp, a)) == lp
        assert p_and(lp, p_or(lp, a)) == lp

    def test_loop_and_invariant_collapses(self):
        body = p_leaf(gt0(sym("x")))
        assert p_loop_and("i", 1, sym("N"), body) == body

    def test_loop_and_false(self):
        assert p_loop_and("i", 1, sym("N"), PFALSE).is_false()

    def test_call_barrier(self):
        inner = p_leaf(gt0(sym("x")))
        c = p_call("sub", inner)
        assert c.evaluate({"x": 1})
        assert p_call("sub", PTRUE).is_true()


class TestEvaluation:
    def test_loop_and_all_iterations(self):
        body = p_leaf(cmp_le(ArrayRef("B", [sym("i")]).as_expr(), 10))
        lp = p_loop_and("i", 1, sym("N"), body)
        assert lp.evaluate({"N": 3, "B": [1, 2, 3]})
        assert not lp.evaluate({"N": 3, "B": [1, 99, 3]})

    def test_empty_range_vacuous(self):
        body = p_leaf(cmp_le(ArrayRef("B", [sym("i")]).as_expr(), 10))
        lp = p_loop_and("i", 1, 0, body)
        assert lp.evaluate({"B": []})

    def test_stats_counting(self):
        body = p_leaf(cmp_le(ArrayRef("B", [sym("i")]).as_expr(), 10))
        lp = p_loop_and("i", 1, 4, body)
        stats = EvalStats()
        lp.evaluate({"B": [1, 2, 3, 4]}, stats)
        assert stats.loop_iterations == 4
        assert stats.leaf_evals == 4

    def test_short_circuit(self):
        body = p_leaf(cmp_le(ArrayRef("B", [sym("i")]).as_expr(), 10))
        lp = p_loop_and("i", 1, 4, body)
        stats = EvalStats()
        lp.evaluate({"B": [99, 1, 1, 1]}, stats)
        assert stats.loop_iterations == 1  # fails on the first iteration

    def test_loop_depth(self):
        body = p_leaf(gt0(ArrayRef("B", [sym("i"), ]).as_expr()))
        inner = p_loop_and("i", 1, sym("M"), body)
        # inner depends on i only; wrap in an outer loop over j via a
        # j-dependent bound
        outer = p_loop_and("j", 1, sym("N"), p_loop_and(
            "i", 1, sym("j"), body))
        assert inner.loop_depth() == 1
        assert outer.loop_depth() == 2
        assert outer.complexity_label() == "O(N^2)"


class TestSimplify:
    def test_invariant_hoisting_and(self):
        inv = p_leaf(cmp_le(sym("NS"), 16 * sym("NP")))
        var = p_leaf(cmp_gt(ArrayRef("B", [sym("i")]).as_expr(), 0))
        lp = p_loop_and("i", 1, sym("N"), p_and(inv, var))
        out = simplify(lp)
        assert isinstance(out, PAnd)
        # The invariant conjunct must appear outside any loop node.
        hoisted = [a for a in out.args if a.loop_depth() == 0]
        assert hoisted

    def test_fm_elimination_collapses_loop(self):
        """The Fig. 3(a) effect: an affine leaf under a loop node turns
        into an O(1) predicate."""
        leaf = p_leaf(cmp_lt(8 * sym("NP"), sym("NS") + 6))
        lp = p_loop_and("i", 1, sym("N"), p_loop_and("k", 1, sym("M"), leaf))
        out = simplify(lp)
        assert out.loop_depth() == 0

    def test_common_factor_extraction(self):
        a = p_loop_and("i", 1, sym("N"),
                       p_leaf(gt0(ArrayRef("B", [sym("i")]).as_expr())))
        x = p_loop_and("j", 1, sym("N"),
                       p_leaf(gt0(ArrayRef("C", [sym("j")]).as_expr())))
        y = p_loop_and("j", 1, sym("N"),
                       p_leaf(cmp_ge(ArrayRef("C", [sym("j")]).as_expr(), 5)))
        node = p_and(p_or(x, a), p_or(y, a))
        out = simplify(node)
        # a is factored out: (x and y) or a
        assert isinstance(out, POr)
        assert a in out.args


class TestCascade:
    def _monotone_pred(self):
        i = sym("i")
        step = cmp_le(
            sym("NS"),
            32 * (ArrayRef("IB", [i + 1]) - ArrayRef("IA", [i]) - ArrayRef("IB", [i]) + 1),
        )
        return p_and(
            p_leaf(cmp_le(sym("NS"), 16 * sym("NP"))),
            p_loop_and("i", 1, sym("N") - 1, p_leaf(step)),
        )

    def test_stage_ordering(self):
        cascade = build_cascade(self._monotone_pred())
        labels = [s.label for s in cascade.stages]
        assert labels == sorted(labels, key=lambda l: (l != "O(1)", l))

    def test_first_success_wins(self):
        cascade = build_cascade(self._monotone_pred())
        env = {"NS": 2, "NP": 1, "N": 3, "IB": [1, 20, 40], "IA": [1, 1, 1]}
        outcome = cascade.evaluate(env)
        assert outcome.passed

    def test_all_fail(self):
        cascade = build_cascade(self._monotone_pred())
        env = {"NS": 200, "NP": 1, "N": 3, "IB": [1, 2, 3], "IA": [1, 1, 1]}
        assert not cascade.evaluate(env).passed

    def test_strengthen_to_depth_zero(self):
        pred = self._monotone_pred()
        o1 = strengthen_to_depth(pred, 0)
        assert o1.loop_depth() == 0

    def test_strengthened_stage_implies_full(self):
        """Soundness of the cascade: any passing stage is a strengthening
        of the full predicate."""
        pred = self._monotone_pred()
        cascade = build_cascade(pred)
        env = {"NS": 2, "NP": 1, "N": 3, "IB": [1, 20, 40], "IA": [1, 1, 1]}
        for stage in cascade.stages:
            if stage.predicate.evaluate(env):
                assert pred.evaluate(env)

    def test_duplicate_stages_dropped(self):
        flat = p_leaf(cmp_le(sym("A"), sym("B")))
        cascade = build_cascade(flat)
        assert len(cascade.stages) == 1
