"""Unit tests for the FACTOR inference algorithm (Fig. 5)."""

import pytest

from repro.core import FactorContext, factor
from repro.core.monotonic import match_self_overlap, monotonicity_predicate
from repro.lmad import interval, point
from repro.pdag import simplify
from repro.symbolic import ArrayRef, as_expr, b_not, cmp_eq, cmp_ne, sym
from repro.usr import (
    usr_gate,
    usr_intersect,
    usr_leaf,
    usr_recurrence,
    usr_subtract,
    usr_union,
)


def check_soundness(usr, pred, envs):
    """The central invariant: pred true => usr empty."""
    for env in envs:
        if pred.evaluate(env):
            assert usr.evaluate(env) == set(), f"unsound under {env}"


class TestBasicRules:
    def test_leaf_nonempty_is_false(self):
        p = factor(usr_leaf(interval(1, 5)))
        assert p.is_false()

    def test_empty_leaf_is_true(self):
        from repro.usr import EMPTY

        assert factor(EMPTY).is_true()

    def test_gate_rule(self):
        """Fig. 4: F(g # S) = not g  or  F(S)."""
        g = usr_gate(cmp_ne(sym("SYM"), 1), usr_leaf(interval(1, 5)))
        p = factor(g)
        assert p.evaluate({"SYM": 1})
        assert not p.evaluate({"SYM": 0})

    def test_union_rule(self):
        u = usr_union(
            usr_gate(cmp_eq(sym("a"), 1), usr_leaf(point(1))),
            usr_gate(cmp_eq(sym("b"), 1), usr_leaf(point(2))),
        )
        p = factor(u)
        assert p.evaluate({"a": 0, "b": 0})
        assert not p.evaluate({"a": 1, "b": 0})

    def test_subtract_rule_via_inclusion(self):
        s = usr_subtract(
            usr_leaf(interval(1, sym("NS"))),
            usr_leaf(interval(1, 16 * sym("NP"))),
        )
        p = factor(s)
        assert p.evaluate({"NS": 16, "NP": 1})
        assert not p.evaluate({"NS": 17, "NP": 1})

    def test_intersect_rule_via_disjointness(self):
        s = usr_intersect(
            usr_leaf(interval(1, sym("N"))),
            usr_leaf(interval(sym("M"), sym("M") + 10)),
        )
        p = factor(s)
        assert p.evaluate({"N": 5, "M": 6})
        assert not p.evaluate({"N": 5, "M": 5})

    def test_paper_fig4(self):
        """The complete Fig. 4 derivation for the Fig. 3(c) USR."""
        ns, np_, s = sym("NS"), sym("NP"), sym("SYM")
        s1 = usr_subtract(
            usr_leaf(interval(0, ns - 1)), usr_leaf(interval(0, 16 * np_ - 1))
        )
        a = usr_gate(cmp_ne(s, 1), s1)
        b = usr_gate(cmp_eq(s, 1), usr_leaf(interval(0, ns - 1)))
        find = usr_union(a, b)
        p = simplify(factor(find))
        # Paper: F(A u B) = NS <= 16*NP  and  SYM != 1
        assert p.evaluate({"SYM": 0, "NS": 16, "NP": 1})
        assert not p.evaluate({"SYM": 1, "NS": 16, "NP": 1})
        assert not p.evaluate({"SYM": 0, "NS": 17, "NP": 1})

    def test_soundness_randomized(self):
        envs = [
            {"N": n, "M": m, "SYM": s}
            for n in (0, 1, 3, 7)
            for m in (0, 2, 5, 9)
            for s in (0, 1)
        ]
        usr = usr_union(
            usr_gate(
                cmp_ne(sym("SYM"), 1),
                usr_subtract(
                    usr_leaf(interval(1, sym("N"))),
                    usr_leaf(interval(1, sym("M"))),
                ),
            ),
            usr_intersect(
                usr_leaf(interval(1, sym("N"))),
                usr_leaf(interval(sym("M") + 1, sym("M") + 3)),
            ),
        )
        pred = factor(usr)
        check_soundness(usr, pred, envs)


class TestRecurrenceRules:
    def test_loop_conjunction(self):
        body = usr_gate(
            cmp_eq(ArrayRef("B", [sym("i")]).as_expr(), 0),
            usr_leaf(point(sym("i"))),
        )
        r = usr_recurrence("i", 1, sym("N"), body)
        p = factor(r)
        assert p.evaluate({"N": 3, "B": [1, 2, 3]})
        assert not p.evaluate({"N": 3, "B": [1, 0, 3]})

    def test_rule1_same_loop_invariant_overestimates(self):
        """Two recurrences over the same loop: invariant overestimates."""
        w = usr_recurrence(
            "i", 1, sym("N"),
            usr_leaf(point(sym("i"))),
        )
        r = usr_recurrence(
            "i", 1, sym("N"),
            usr_leaf(point(sym("i") + sym("OFF"))),
        )
        p = factor(usr_intersect(w, r))
        # Disjoint when OFF pushes the reads past the writes.
        assert p.evaluate({"N": 5, "OFF": 5})
        assert not p.evaluate({"N": 5, "OFF": 2})

    def test_monotonicity_match(self):
        """The OIND self-overlap shape is recognized."""
        i = sym("i")
        ib = ArrayRef("IB", [i])
        ia = ArrayRef("IA", [i])
        wf = usr_leaf(interval(32 * (ib - 1), 32 * (ib + ia - 2) + sym("NS") - 1))
        from repro.usr import Summary, aggregate_loop
        from repro.core import output_independence_usr

        ls = aggregate_loop("i", 1, sym("N"), Summary(wf=wf))
        oind = output_independence_usr(ls)
        matched = match_self_overlap(oind)
        assert matched is not None

    def test_paper_fig3b_predicate(self):
        """The Fig. 3(b) monotonicity predicate:
        AND_i NS <= 32*(IB(i+1)-IA(i)-IB(i)+1)."""
        i = sym("i")
        ib = ArrayRef("IB", [i])
        ia = ArrayRef("IA", [i])
        wf = usr_leaf(interval(32 * (ib - 1), 32 * (ib + ia - 2) + sym("NS") - 1))
        from repro.usr import Summary, aggregate_loop
        from repro.core import output_independence_usr

        ls = aggregate_loop("i", 1, sym("N"), Summary(wf=wf))
        pred = simplify(factor(output_independence_usr(ls)))
        good = {"N": 3, "NS": 2, "IB": [1, 3, 6], "IA": [2, 3, 1]}
        bad = {"N": 3, "NS": 200, "IB": [1, 2, 3], "IA": [1, 1, 1]}
        assert pred.evaluate(good)
        assert not pred.evaluate(bad)

    def test_monotonicity_disabled_by_flag(self):
        i = sym("i")
        b = ArrayRef("B", [i])
        wf = usr_leaf(interval(b, b + 3))
        from repro.usr import Summary, aggregate_loop
        from repro.core import output_independence_usr

        ls = aggregate_loop("i", 1, sym("N"), Summary(wf=wf))
        oind = output_independence_usr(ls)
        with_mono = factor(oind, FactorContext(use_monotonicity=True))
        without = factor(oind, FactorContext(use_monotonicity=False))
        env = {"N": 3, "B": [1, 10, 20]}
        assert with_mono.evaluate(env)
        assert not without.evaluate(env)

    def test_variable_capture_avoided(self):
        """Two recurrences sharing an index name must not capture each
        other's variables (regression test for the distribution rules)."""
        n = sym("N")
        w = usr_recurrence(
            "n", 1, n, usr_leaf(point(ArrayRef("KX", [sym("n")])))
        )
        r = usr_recurrence(
            "n", 1, n, usr_leaf(point(ArrayRef("KX", [sym("n")]) + sym("M")))
        )
        ctx = FactorContext(distribute_disjoint_recurrences=True)
        pred = factor(usr_intersect(w, r), ctx)
        # KX = [1, 2], M = 1: writes {1,2}, reads {2,3}: THEY INTERSECT.
        env = {"N": 2, "M": 1, "KX": [1, 2]}
        assert usr_intersect(w, r).evaluate(env) != set()
        assert not pred.evaluate(env)


class TestFillsArr:
    def test_rule5(self):
        """FILLS_ARR: a dense LMAD covering the declared array bounds
        includes any (in-bounds) summary, even an opaque one."""
        ctx = FactorContext(array_extent=(as_expr(1), sym("SZ")))
        opaque = usr_recurrence(
            "i", 1, sym("N"), usr_leaf(point(ArrayRef("B", [sym("i")])))
        )
        s = usr_subtract(opaque, usr_leaf(interval(1, sym("K"))))
        p = factor(s, ctx)
        # K >= SZ: the subtrahend covers the whole declared array, so the
        # opaque accesses (in-bounds by assumption) are all subtracted.
        good = {"K": 10, "SZ": 10, "N": 1, "B": [5]}
        assert p.evaluate(good)
        # K < SZ and an access beyond K: genuinely non-empty.
        bad = {"K": 9, "SZ": 10, "N": 1, "B": [10]}
        assert s.evaluate(bad) != set()
        assert not p.evaluate(bad)
