"""Unit tests for the FACTOR inference algorithm (Fig. 5)."""

import pytest

from repro.core import FactorContext, factor
from repro.core.monotonic import match_self_overlap, monotonicity_predicate
from repro.lmad import interval, point
from repro.pdag import simplify
from repro.symbolic import ArrayRef, as_expr, b_not, cmp_eq, cmp_ne, sym
from repro.usr import (
    usr_gate,
    usr_intersect,
    usr_leaf,
    usr_recurrence,
    usr_subtract,
    usr_union,
)


def check_soundness(usr, pred, envs):
    """The central invariant: pred true => usr empty."""
    for env in envs:
        if pred.evaluate(env):
            assert usr.evaluate(env) == set(), f"unsound under {env}"


class TestBasicRules:
    def test_leaf_nonempty_is_false(self):
        p = factor(usr_leaf(interval(1, 5)))
        assert p.is_false()

    def test_empty_leaf_is_true(self):
        from repro.usr import EMPTY

        assert factor(EMPTY).is_true()

    def test_gate_rule(self):
        """Fig. 4: F(g # S) = not g  or  F(S)."""
        g = usr_gate(cmp_ne(sym("SYM"), 1), usr_leaf(interval(1, 5)))
        p = factor(g)
        assert p.evaluate({"SYM": 1})
        assert not p.evaluate({"SYM": 0})

    def test_union_rule(self):
        u = usr_union(
            usr_gate(cmp_eq(sym("a"), 1), usr_leaf(point(1))),
            usr_gate(cmp_eq(sym("b"), 1), usr_leaf(point(2))),
        )
        p = factor(u)
        assert p.evaluate({"a": 0, "b": 0})
        assert not p.evaluate({"a": 1, "b": 0})

    def test_subtract_rule_via_inclusion(self):
        s = usr_subtract(
            usr_leaf(interval(1, sym("NS"))),
            usr_leaf(interval(1, 16 * sym("NP"))),
        )
        p = factor(s)
        assert p.evaluate({"NS": 16, "NP": 1})
        assert not p.evaluate({"NS": 17, "NP": 1})

    def test_intersect_rule_via_disjointness(self):
        s = usr_intersect(
            usr_leaf(interval(1, sym("N"))),
            usr_leaf(interval(sym("M"), sym("M") + 10)),
        )
        p = factor(s)
        assert p.evaluate({"N": 5, "M": 6})
        assert not p.evaluate({"N": 5, "M": 5})

    def test_paper_fig4(self):
        """The complete Fig. 4 derivation for the Fig. 3(c) USR."""
        ns, np_, s = sym("NS"), sym("NP"), sym("SYM")
        s1 = usr_subtract(
            usr_leaf(interval(0, ns - 1)), usr_leaf(interval(0, 16 * np_ - 1))
        )
        a = usr_gate(cmp_ne(s, 1), s1)
        b = usr_gate(cmp_eq(s, 1), usr_leaf(interval(0, ns - 1)))
        find = usr_union(a, b)
        p = simplify(factor(find))
        # Paper: F(A u B) = NS <= 16*NP  and  SYM != 1
        assert p.evaluate({"SYM": 0, "NS": 16, "NP": 1})
        assert not p.evaluate({"SYM": 1, "NS": 16, "NP": 1})
        assert not p.evaluate({"SYM": 0, "NS": 17, "NP": 1})

    def test_soundness_randomized(self):
        envs = [
            {"N": n, "M": m, "SYM": s}
            for n in (0, 1, 3, 7)
            for m in (0, 2, 5, 9)
            for s in (0, 1)
        ]
        usr = usr_union(
            usr_gate(
                cmp_ne(sym("SYM"), 1),
                usr_subtract(
                    usr_leaf(interval(1, sym("N"))),
                    usr_leaf(interval(1, sym("M"))),
                ),
            ),
            usr_intersect(
                usr_leaf(interval(1, sym("N"))),
                usr_leaf(interval(sym("M") + 1, sym("M") + 3)),
            ),
        )
        pred = factor(usr)
        check_soundness(usr, pred, envs)


class TestRecurrenceRules:
    def test_loop_conjunction(self):
        body = usr_gate(
            cmp_eq(ArrayRef("B", [sym("i")]).as_expr(), 0),
            usr_leaf(point(sym("i"))),
        )
        r = usr_recurrence("i", 1, sym("N"), body)
        p = factor(r)
        assert p.evaluate({"N": 3, "B": [1, 2, 3]})
        assert not p.evaluate({"N": 3, "B": [1, 0, 3]})

    def test_rule1_same_loop_invariant_overestimates(self):
        """Two recurrences over the same loop: invariant overestimates."""
        w = usr_recurrence(
            "i", 1, sym("N"),
            usr_leaf(point(sym("i"))),
        )
        r = usr_recurrence(
            "i", 1, sym("N"),
            usr_leaf(point(sym("i") + sym("OFF"))),
        )
        p = factor(usr_intersect(w, r))
        # Disjoint when OFF pushes the reads past the writes.
        assert p.evaluate({"N": 5, "OFF": 5})
        assert not p.evaluate({"N": 5, "OFF": 2})

    def test_monotonicity_match(self):
        """The OIND self-overlap shape is recognized."""
        i = sym("i")
        ib = ArrayRef("IB", [i])
        ia = ArrayRef("IA", [i])
        wf = usr_leaf(interval(32 * (ib - 1), 32 * (ib + ia - 2) + sym("NS") - 1))
        from repro.usr import Summary, aggregate_loop
        from repro.core import output_independence_usr

        ls = aggregate_loop("i", 1, sym("N"), Summary(wf=wf))
        oind = output_independence_usr(ls)
        matched = match_self_overlap(oind)
        assert matched is not None

    def test_paper_fig3b_predicate(self):
        """The Fig. 3(b) monotonicity predicate:
        AND_i NS <= 32*(IB(i+1)-IA(i)-IB(i)+1)."""
        i = sym("i")
        ib = ArrayRef("IB", [i])
        ia = ArrayRef("IA", [i])
        wf = usr_leaf(interval(32 * (ib - 1), 32 * (ib + ia - 2) + sym("NS") - 1))
        from repro.usr import Summary, aggregate_loop
        from repro.core import output_independence_usr

        ls = aggregate_loop("i", 1, sym("N"), Summary(wf=wf))
        pred = simplify(factor(output_independence_usr(ls)))
        good = {"N": 3, "NS": 2, "IB": [1, 3, 6], "IA": [2, 3, 1]}
        bad = {"N": 3, "NS": 200, "IB": [1, 2, 3], "IA": [1, 1, 1]}
        assert pred.evaluate(good)
        assert not pred.evaluate(bad)

    def test_monotonicity_disabled_by_flag(self):
        i = sym("i")
        b = ArrayRef("B", [i])
        wf = usr_leaf(interval(b, b + 3))
        from repro.usr import Summary, aggregate_loop
        from repro.core import output_independence_usr

        ls = aggregate_loop("i", 1, sym("N"), Summary(wf=wf))
        oind = output_independence_usr(ls)
        with_mono = factor(oind, FactorContext(use_monotonicity=True))
        without = factor(oind, FactorContext(use_monotonicity=False))
        env = {"N": 3, "B": [1, 10, 20]}
        assert with_mono.evaluate(env)
        assert not without.evaluate(env)

    def test_variable_capture_avoided(self):
        """Two recurrences sharing an index name must not capture each
        other's variables (regression test for the distribution rules)."""
        n = sym("N")
        w = usr_recurrence(
            "n", 1, n, usr_leaf(point(ArrayRef("KX", [sym("n")])))
        )
        r = usr_recurrence(
            "n", 1, n, usr_leaf(point(ArrayRef("KX", [sym("n")]) + sym("M")))
        )
        ctx = FactorContext(distribute_disjoint_recurrences=True)
        pred = factor(usr_intersect(w, r), ctx)
        # KX = [1, 2], M = 1: writes {1,2}, reads {2,3}: THEY INTERSECT.
        env = {"N": 2, "M": 1, "KX": [1, 2]}
        assert usr_intersect(w, r).evaluate(env) != set()
        assert not pred.evaluate(env)


class TestFillsArr:
    def test_rule5(self):
        """FILLS_ARR: a dense LMAD covering the declared array bounds
        includes any (in-bounds) summary, even an opaque one."""
        ctx = FactorContext(array_extent=(as_expr(1), sym("SZ")))
        opaque = usr_recurrence(
            "i", 1, sym("N"), usr_leaf(point(ArrayRef("B", [sym("i")])))
        )
        s = usr_subtract(opaque, usr_leaf(interval(1, sym("K"))))
        p = factor(s, ctx)
        # K >= SZ: the subtrahend covers the whole declared array, so the
        # opaque accesses (in-bounds by assumption) are all subtracted.
        good = {"K": 10, "SZ": 10, "N": 1, "B": [5]}
        assert p.evaluate(good)
        # K < SZ and an access beyond K: genuinely non-empty.
        bad = {"K": 9, "SZ": 10, "N": 1, "B": [10]}
        assert s.evaluate(bad) != set()
        assert not p.evaluate(bad)


class TestScreening:
    """The Tier-0 screen (repro.core.screening) may only claim what the
    Tier-1 pipeline would prove: ``screen_static(s, ctx)`` true implies
    ``simplify(factor(s, ctx'))`` is PTRUE under the same knobs."""

    @staticmethod
    def _tier1_static(s, ctx):
        from dataclasses import fields as dc_fields

        knobs = {
            f.name: getattr(ctx, f.name)
            for f in dc_fields(FactorContext)
            if not f.name.startswith("_")
        }
        return simplify(factor(s, FactorContext(**knobs))).is_true()

    @staticmethod
    def _random_usr(rng, depth=3):
        build = TestScreening._random_usr
        if depth == 0 or rng.random() < 0.3:
            lo = rng.choice([1, sym("M"), sym("K") + 1])
            hi = rng.choice([sym("N"), sym("M"), as_expr(rng.randrange(0, 9))])
            return usr_leaf(interval(lo, hi))
        kind = rng.randrange(5)
        if kind == 0:
            return usr_union(build(rng, depth - 1), build(rng, depth - 1))
        if kind == 1:
            return usr_intersect(build(rng, depth - 1), build(rng, depth - 1))
        if kind == 2:
            return usr_subtract(build(rng, depth - 1), build(rng, depth - 1))
        if kind == 3:
            cond = rng.choice([cmp_eq(sym("M"), 1), cmp_ne(sym("N"), 0)])
            return usr_gate(cond, build(rng, depth - 1))
        return usr_recurrence(
            "i", 1, sym("N"),
            usr_leaf(point(ArrayRef("A", [sym("i")])))
            if rng.random() < 0.5 else build(rng, depth - 1),
        )

    def test_screen_never_overclaims_randomized(self):
        import random

        from repro.core.screening import screen_static

        rng = random.Random(2024)
        contexts = [
            FactorContext(),
            FactorContext(use_reshaping=False),
            FactorContext(size_cap=3_000, work_cap=4_000),
            FactorContext(work_cap=12),
            FactorContext(monotone=frozenset({"A"})),
        ]
        claims = 0
        for _ in range(200):
            s = self._random_usr(rng)
            for ctx in contexts:
                if screen_static(s, ctx):
                    claims += 1
                    assert self._tier1_static(s, ctx), (
                        f"screen overclaimed on {s}"
                    )
        # the property must not pass vacuously: the generator's shapes
        # include some the screen does resolve
        assert claims >= 10

    def test_screen_resolves_known_static_shapes(self):
        from repro.core.screening import screen_static

        ctx = FactorContext()
        sub = usr_subtract(
            usr_leaf(interval(1, sym("N"))), usr_leaf(interval(1, sym("N")))
        )
        assert screen_static(sub, ctx)
        assert self._tier1_static(sub, ctx)
        gated = usr_gate(cmp_eq(as_expr(1), as_expr(2)), usr_leaf(interval(1, 5)))
        assert screen_static(gated, ctx)
        assert self._tier1_static(gated, ctx)

    def test_screen_escalates_on_real_work(self):
        from repro.core.screening import screen_static

        # a genuinely non-empty summary must never screen as static
        assert not screen_static(usr_leaf(interval(1, 5)), FactorContext())

    def test_screen_escalates_under_tiny_budget(self):
        from repro.core.screening import screen_static

        sub = usr_subtract(
            usr_leaf(interval(1, sym("N"))), usr_leaf(interval(1, sym("N")))
        )
        # deep/complex proofs are refused when the caps cannot cover
        # them; escalation (not overclaim) is the safe direction
        assert not screen_static(sub, FactorContext(max_depth=1))
        assert not screen_static(sub, FactorContext(size_cap=1))
