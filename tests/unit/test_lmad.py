"""Unit tests for the LMAD descriptor and its predicate extraction."""

import pytest

from repro.lmad import (
    LMAD,
    dense_interval,
    disjoint_lmad_sets,
    disjoint_lmads,
    fills_array,
    included_lmad_sets,
    included_lmads,
    interval,
    point,
)
from repro.symbolic import as_expr, sym


class TestConstruction:
    def test_point(self):
        p = point(5)
        assert p.enumerate({}) == {5}
        assert p.is_point()

    def test_interval(self):
        assert interval(3, 7).enumerate({}) == {3, 4, 5, 6, 7}

    def test_empty_interval(self):
        assert interval(5, 3).enumerate({}) == set()
        assert interval(5, 3).is_definitely_empty()

    def test_mismatched_dims(self):
        with pytest.raises(ValueError):
            LMAD([1, 2], [3])

    def test_strided(self):
        a = LMAD([2], [6], 0)
        assert a.enumerate({}) == {0, 2, 4, 6}

    def test_multidim(self):
        # 2 rows of 3 consecutive elements, stride 10 between rows.
        a = LMAD([1, 10], [2, 10], 0)
        assert a.enumerate({}) == {0, 1, 2, 10, 11, 12}

    def test_negative_stride_normalized_in_enumerate(self):
        a = LMAD([-2], [6], 10)
        assert a.enumerate({}) == {4, 6, 8, 10}

    def test_normalized_drops_zero_span(self):
        a = LMAD([1, 7], [4, 0], 2)
        assert a.normalized().ndims == 1

    def test_symbolic_enumerate(self):
        a = interval(1, sym("N"))
        assert a.enumerate({"N": 3}) == {1, 2, 3}


class TestAggregation:
    def test_affine_base(self):
        # A[i] for i = 1..N
        agg = point(sym("i")).aggregated("i", 1, sym("N"))
        assert agg is not None
        assert agg.enumerate({"N": 4}) == {1, 2, 3, 4}

    def test_strided_base(self):
        agg = point(2 * sym("i")).aggregated("i", 1, 5)
        assert agg.enumerate({}) == {2, 4, 6, 8, 10}

    def test_negative_coefficient(self):
        agg = point(10 - sym("i")).aggregated("i", 1, 5)
        assert agg.enumerate({}) == {5, 6, 7, 8, 9}
        # Positive stride and the base at the small end.
        assert all(
            d.is_constant() and d.constant_value() > 0 for d in agg.strides
        )

    def test_invariant_body(self):
        a = interval(1, 10)
        assert a.aggregated("i", 1, sym("N")) is a

    def test_nonaffine_fails(self):
        from repro.symbolic import ArrayRef

        a = point(ArrayRef("B", [sym("i")]))
        assert a.aggregated("i", 1, sym("N")) is None

    def test_index_in_stride_fails(self):
        a = LMAD([sym("i")], [sym("i") * 3], 0)
        assert a.aggregated("i", 1, 5) is None

    def test_nested_aggregation_matches_paper(self):
        """Section 2.1's example: A[i*N + j*k], j inner, i outer."""
        n, k = sym("N"), sym("k")
        st = point(sym("i") * n + sym("j") * k)
        li = st.aggregated("j", 1, sym("M"))
        lo = li.aggregated("i", 1, n)
        env = {"N": 20, "M": 3, "k": 2}
        expected = {
            i * 20 + j * 2 for i in range(1, 21) for j in range(1, 4)
        }
        assert lo.enumerate(env) == expected


class TestDisjointness:
    def test_separated_intervals(self):
        p = disjoint_lmads(interval(1, 5), interval(6, 10))
        assert p.evaluate({})

    def test_overlapping_intervals(self):
        p = disjoint_lmads(interval(1, 5), interval(5, 10))
        assert not p.evaluate({})

    def test_interleaved_gcd(self):
        evens = LMAD([2], [98], 0)
        odds = LMAD([2], [98], 1)
        assert disjoint_lmads(evens, odds).is_true()

    def test_interleaved_symbolic_offsets(self):
        a = LMAD([2], [98], sym("O1"))
        b = LMAD([2], [98], sym("O2"))
        p = disjoint_lmads(a, b)
        assert p.evaluate({"O1": 0, "O2": 1})  # different parity
        assert not p.evaluate({"O1": 0, "O2": 2})  # same parity, overlap

    def test_empty_always_disjoint(self):
        p = disjoint_lmads(interval(5, 3), interval(1, 10))
        assert p.evaluate({})

    def test_symbolic_separation(self):
        n = sym("N")
        p = disjoint_lmads(interval(1, n), interval(n + 1, 2 * n))
        assert p.evaluate({"N": 7})

    def test_paper_correc_do900(self):
        """Section 3.2's multi-dimensional example."""
        m, j = sym("M"), sym("j")
        c = LMAD([m], [2 * m], j - 1 + 2 * m)
        d = LMAD([1, m], [j - 2, 2 * m], 2 * m)
        p = disjoint_lmads(c, d)
        # Well-formed when j-1 < M (the paper's N <= M after FM).
        assert p.evaluate({"M": 10, "j": 5})

    def test_soundness_sample(self):
        """If the predicate says disjoint, the concrete sets are."""
        cases = [
            (LMAD([3], [9], 0), LMAD([3], [9], 1)),
            (LMAD([2], [10], 0), LMAD([4], [8], 1)),
            (interval(1, 10), LMAD([5], [10], 3)),
        ]
        for a, b in cases:
            if disjoint_lmads(a, b).evaluate({}):
                assert not (a.enumerate({}) & b.enumerate({}))

    def test_sets(self):
        s1 = [interval(1, 5), interval(20, 25)]
        s2 = [interval(6, 10)]
        assert disjoint_lmad_sets(s1, s2).evaluate({})
        s3 = [interval(4, 8)]
        assert not disjoint_lmad_sets(s1, s3).evaluate({})


class TestInclusion:
    def test_interval_in_interval(self):
        p = included_lmads(interval(3, 5), interval(1, 10))
        assert p.evaluate({})

    def test_not_included(self):
        p = included_lmads(interval(3, 12), interval(1, 10))
        assert not p.evaluate({})

    def test_paper_xe_example(self):
        """[0, NS-1] included in [0, 16*NP-1] iff NS <= 16*NP."""
        ns, np_ = sym("NS"), sym("NP")
        p = included_lmads(interval(0, ns - 1), interval(0, 16 * np_ - 1))
        assert p.evaluate({"NS": 16, "NP": 1})
        assert not p.evaluate({"NS": 17, "NP": 1})

    def test_stride_divisibility(self):
        # {0,4,8} in {0,2,...,10}: stride 4 divisible by 2, offsets align.
        p = included_lmads(LMAD([4], [8], 0), LMAD([2], [10], 0))
        assert p.evaluate({})
        # {1,5,9} in evens: offset misaligned.
        p2 = included_lmads(LMAD([4], [8], 1), LMAD([2], [10], 0))
        assert not p2.evaluate({})

    def test_dense_multidim_target(self):
        """[1,16]v[15,16*NP-16]+1 is the dense interval [1, 16*NP]."""
        np_ = sym("NP")
        target = LMAD([1, 16], [15, 16 * np_ - 16], 1)
        p = included_lmads(interval(1, sym("NS")), target)
        assert p.evaluate({"NS": 30, "NP": 2})
        assert not p.evaluate({"NS": 33, "NP": 2})

    def test_empty_included_in_anything(self):
        assert included_lmads(interval(5, 2), interval(100, 100)).evaluate({})

    def test_soundness_sample(self):
        cases = [
            (LMAD([2], [8], 2), interval(0, 20)),
            (LMAD([4], [8], 0), LMAD([2], [20], 0)),
            (interval(5, 9), LMAD([1, 10], [4, 10], 5)),
        ]
        for a, b in cases:
            if included_lmads(a, b).evaluate({}):
                assert a.enumerate({}) <= b.enumerate({})

    def test_sets(self):
        s1 = [interval(2, 4), interval(12, 14)]
        s2 = [interval(1, 5), interval(10, 15)]
        assert included_lmad_sets(s1, s2).evaluate({})
        assert not included_lmad_sets([interval(2, 6)], s2).evaluate({})


class TestDenseAndFills:
    def test_dense_1d(self):
        assert dense_interval(interval(3, 10)) == (as_expr(3), as_expr(10))

    def test_dense_telescoping(self):
        a = LMAD([1, 4], [3, 12], 0)  # rows of 4, stride 4: covers [0,15]
        assert dense_interval(a) == (as_expr(0), as_expr(15))

    def test_not_dense_gap(self):
        a = LMAD([1, 5], [3, 15], 0)  # rows of 4, stride 5: gaps
        assert dense_interval(a) is None

    def test_dense_symbolic_outer(self):
        n = sym("N")
        a = LMAD([1, 16], [15, 16 * n - 16], 1)
        assert dense_interval(a) == (as_expr(1), 16 * n)

    def test_strided_not_dense(self):
        assert dense_interval(LMAD([2], [10], 0)) is None

    def test_fills_array(self):
        p = fills_array(interval(1, sym("N")), as_expr(1), sym("SZ"))
        assert p.evaluate({"N": 10, "SZ": 10})
        assert not p.evaluate({"N": 9, "SZ": 10})

    def test_fills_array_not_dense(self):
        assert fills_array(LMAD([2], [10], 0), as_expr(1), as_expr(10)).is_false()


class TestFastDisjointKernel:
    """The bulk/NumPy constant-geometry kernel behind
    ``disjoint_lmad_sets`` must agree exactly with the symbolic
    reference fold -- it is a vectorization, not an approximation."""

    @staticmethod
    def _reference(s1, s2):
        from repro.symbolic import TRUE, b_and

        preds = [disjoint_lmads(a, b) for a in s1 for b in s2]
        return b_and(*preds) if preds else TRUE

    @staticmethod
    def _random_const_lmad(rng):
        ndims = rng.randrange(0, 2)
        if ndims == 0:
            return point(rng.randrange(-5, 40))
        stride = rng.choice([1, 1, 2, 3, 4, -2])
        span = rng.randrange(-2, 30)
        base = rng.randrange(-5, 40)
        return LMAD([stride], [span], base)

    def test_agreement_randomized(self):
        import random

        from repro.lmad.compare import _disjoint_sets_fast

        rng = random.Random(99)
        fast_hits = 0
        for _ in range(300):
            s1 = [self._random_const_lmad(rng)
                  for _ in range(rng.randrange(1, 5))]
            s2 = [self._random_const_lmad(rng)
                  for _ in range(rng.randrange(1, 5))]
            fast = _disjoint_sets_fast(s1, s2)
            assert fast is not None, "all-constant 1D sets must bulk-fold"
            fast_hits += 1
            reference = self._reference(s1, s2)
            assert fast.is_true() or fast.is_false()
            assert fast.evaluate({}) == reference.evaluate({}), (
                f"fast kernel diverged on {s1} vs {s2}"
            )
        assert fast_hits == 300

    def test_falls_through_on_symbolic_or_multidim(self):
        from repro.lmad.compare import _disjoint_sets_fast

        n = sym("N")
        assert _disjoint_sets_fast([interval(1, n)], [point(0)]) is None
        multi = LMAD([1, 16], [3, 32], 0)
        assert _disjoint_sets_fast([multi], [point(0)]) is None
        assert _disjoint_sets_fast([], [point(0)]) is None

    def test_zero_span_dims_normalize_into_fast_path(self):
        from repro.lmad.compare import _disjoint_sets_fast

        # 2D on paper, 1D after normalized() drops the span-0 dim
        a = LMAD([1, 7], [4, 0], 10)
        fast = _disjoint_sets_fast([a], [interval(0, 5)])
        assert fast is not None
        assert fast.evaluate({}) == self._reference(
            [a], [interval(0, 5)]
        ).evaluate({})

    def test_set_level_result_used_by_public_entry(self):
        # separated constants: the public function must return the
        # folded literal (the fast path), same as the reference
        s1 = [interval(1, 5), point(7)]
        s2 = [interval(20, 30)]
        result = disjoint_lmad_sets(s1, s2)
        assert result.is_true()
        s3 = [interval(4, 8)]
        assert disjoint_lmad_sets(s1, s3).is_false()
