"""ServerMetrics counters and the latency histogram.

The stats snapshot is a wire document (served via the ``stats`` verb),
so its key set must be exact and stable; the histogram's percentiles
interpolate log-linearly inside log-spaced buckets, so every estimate
lands within one bucket ratio of the exact nearest-rank quantile.
"""

import math
import random
import threading

from repro.api import ERROR_CODES
from repro.server import FrontTierMetrics, LatencyHistogram, ServerMetrics
from repro.server.metrics import _BUCKET_RATIO

SNAPSHOT_KEYS = {
    "coalesced", "completed", "connections", "errors", "inflight",
    "latency", "requests", "shed", "speculation", "tiers", "uptime_s",
    "warm_hits",
}
LATENCY_KEYS = {"count", "invalid", "mean_s", "p50_s", "p95_s", "p99_s",
                "max_s"}
VERB_KEYS = {"analyze", "execute", "stats", "subscribe", "trace",
             "unsubscribe"}


class TestLatencyHistogram:
    def test_empty_is_all_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {
            "count": 0, "invalid": 0, "mean_s": 0.0, "p50_s": 0.0,
            "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0,
        }

    def test_quantiles_stay_within_one_bucket_of_a_point_mass(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.003)
        snap = hist.snapshot()
        assert snap["count"] == 100
        # every quantile interpolates inside the one occupied bucket
        assert 0.003 / _BUCKET_RATIO <= snap["p50_s"] <= 0.003 * _BUCKET_RATIO
        assert snap["p50_s"] <= snap["p95_s"] <= snap["p99_s"]
        assert snap["p99_s"] <= snap["max_s"]  # clamped to the observed max
        assert abs(snap["max_s"] - 0.003) < 1e-9
        assert abs(snap["mean_s"] - 0.003) < 1e-9

    def test_spread_sample_orders_percentiles(self):
        hist = LatencyHistogram()
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        snap = hist.snapshot()
        assert 0.050 / _BUCKET_RATIO <= snap["p50_s"] <= 0.100
        assert snap["p95_s"] >= 0.095 / _BUCKET_RATIO
        assert snap["p50_s"] < snap["p95_s"] <= snap["p99_s"]

    def test_negative_clamped(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        assert hist.snapshot()["max_s"] == 0.0

    def test_non_finite_durations_rejected(self):
        # regression: a single NaN used to poison sum_s (every later
        # mean became NaN) and inf pinned max_s forever
        hist = LatencyHistogram()
        hist.observe(0.002)
        for poison in (float("nan"), float("inf"), float("-inf"), None, "x"):
            hist.observe(poison)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["invalid"] == 5
        assert math.isfinite(snap["mean_s"]) and snap["mean_s"] > 0
        assert snap["max_s"] == 0.002
        # the histogram keeps working after the bad samples
        hist.observe(0.004)
        assert hist.snapshot()["count"] == 2
        assert math.isfinite(hist.snapshot()["mean_s"])

    def test_state_is_sparse_and_cumulative(self):
        hist = LatencyHistogram()
        hist.observe(0.003)
        hist.observe(0.003)
        hist.observe(float("nan"))
        state = hist.state()
        assert state["total"] == 2
        assert state["invalid"] == 1
        assert sum(state["counts"].values()) == 2
        assert len(state["counts"]) == 1  # sparse: only hit buckets


class TestQuantileInterpolation:
    """The log-linear estimate is bounded against the exact
    nearest-rank quantile of the raw samples: it never errs by more
    than one bucket ratio in either direction (the histogram only
    knows the bucket, interpolation just places the rank inside it),
    and never exceeds the observed maximum."""

    QS = (0.50, 0.90, 0.95, 0.99)

    @staticmethod
    def _exact(samples, q):
        ordered = sorted(samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def _assert_bounded(self, samples):
        hist = LatencyHistogram()
        for value in samples:
            hist.observe(value)
        for q in self.QS:
            exact = self._exact(samples, q)
            estimate = hist.quantile(q)
            assert estimate <= max(samples) + 1e-12
            assert exact / _BUCKET_RATIO <= estimate <= exact * _BUCKET_RATIO, (
                f"q={q}: estimate {estimate} vs exact {exact}"
            )

    def test_uniform_spread(self):
        self._assert_bounded([i / 1000.0 for i in range(1, 501)])

    def test_log_spread(self):
        rng = random.Random(7)
        self._assert_bounded(
            [10 ** rng.uniform(-4.5, 0.5) for _ in range(1000)]
        )

    def test_heavy_tail(self):
        rng = random.Random(11)
        self._assert_bounded(
            [0.002 + rng.paretovariate(1.5) / 1000.0 for _ in range(800)]
        )

    def test_bimodal(self):
        self._assert_bounded([0.001] * 400 + [0.2] * 100)

    def test_estimates_are_monotone_in_q(self):
        rng = random.Random(3)
        hist = LatencyHistogram()
        for _ in range(300):
            hist.observe(rng.uniform(0.0005, 0.5))
        values = [hist.quantile(q / 100.0) for q in range(1, 100)]
        assert values == sorted(values)


class TestServerMetrics:
    def test_snapshot_schema_is_exact(self):
        snap = ServerMetrics().snapshot()
        assert set(snap) == SNAPSHOT_KEYS
        assert set(snap["latency"]) == LATENCY_KEYS
        assert set(snap["requests"]) == VERB_KEYS
        assert set(snap["errors"]) == ERROR_CODES
        assert snap["speculation"] == {"commits": 0, "rollbacks": 0}
        assert snap["tiers"] == {"tier0": 0, "tier1": 0}

    def test_tier_counters(self):
        metrics = ServerMetrics()
        metrics.tier("tier0")
        metrics.tier("tier0")
        metrics.tier("tier1")
        metrics.tier("warp9")  # unknown labels are ignored, not counted
        assert metrics.snapshot()["tiers"] == {"tier0": 2, "tier1": 1}

    def test_counter_lifecycle(self):
        metrics = ServerMetrics()
        metrics.connection_opened()
        metrics.request_received("analyze")
        metrics.request_admitted()
        assert metrics.snapshot()["inflight"] == 1
        metrics.request_completed(0.004)
        metrics.shed()
        metrics.coalesced()
        metrics.warm_hit()
        metrics.error("bad_request")
        metrics.connection_closed()
        snap = metrics.snapshot()
        assert snap["requests"]["analyze"] == 1
        assert snap["completed"] == 1
        assert snap["inflight"] == 0
        assert snap["connections"] == 0
        assert snap["shed"] == 1
        assert snap["coalesced"] == 1
        assert snap["warm_hits"] == 1
        assert snap["errors"]["overloaded"] == 1  # shed implies the code
        assert snap["errors"]["bad_request"] == 1
        assert snap["latency"]["count"] == 1

    def test_speculation_counters_accumulate(self):
        metrics = ServerMetrics()
        metrics.speculation(1, 0)
        metrics.speculation(0, 1)
        metrics.speculation(2, 0)
        assert metrics.snapshot()["speculation"] == {
            "commits": 3, "rollbacks": 1,
        }

    def test_unknown_verb_and_code_ignored(self):
        metrics = ServerMetrics()
        metrics.request_received("frobnicate")
        metrics.error("no_such_code")
        snap = metrics.snapshot()
        assert sum(snap["requests"].values()) == 0
        assert sum(snap["errors"].values()) == 0

    def test_connections_gauge_never_underflows(self):
        # regression: an unmatched close (teardown racing the open
        # accounting) used to drive the gauge to -1 forever
        metrics = ServerMetrics()
        metrics.connection_closed()
        assert metrics.snapshot()["connections"] == 0
        metrics.connection_opened()
        metrics.connection_closed()
        metrics.connection_closed()
        assert metrics.snapshot()["connections"] == 0
        metrics.connection_opened()  # next open still counts from zero
        assert metrics.snapshot()["connections"] == 1

    def test_front_tier_connections_gauge_never_underflows(self):
        metrics = FrontTierMetrics()
        metrics.connection_closed()
        metrics.connection_closed()
        assert metrics.snapshot()["connections"] == 0
        metrics.connection_opened()
        assert metrics.snapshot()["connections"] == 1

    def test_thread_safety_of_counters(self):
        metrics = ServerMetrics()

        def pound():
            for _ in range(500):
                metrics.request_received("execute")
                metrics.request_admitted()
                metrics.request_completed(0.001)

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        assert snap["requests"]["execute"] == 4000
        assert snap["completed"] == 4000
        assert snap["inflight"] == 0
        assert snap["latency"]["count"] == 4000


class TestSampleRing:
    def test_sample_shape_and_sequence(self):
        metrics = ServerMetrics()
        first = metrics.sample(gauges={"queue_depth": [0, 1]})
        second = metrics.sample(extra={"hot_shards": {"hot_digests": 0}})
        assert set(first) == {
            "seq", "uptime_s", "stats", "gauges", "extra", "latency_state",
        }
        assert first["seq"] == 0 and second["seq"] == 1
        assert first["gauges"] == {"queue_depth": [0, 1]}
        assert second["extra"] == {"hot_shards": {"hot_digests": 0}}
        assert set(first["stats"]) == SNAPSHOT_KEYS

    def test_ring_is_bounded_and_keeps_newest(self):
        metrics = ServerMetrics(ring_capacity=4)
        for _ in range(10):
            metrics.sample()
        samples = metrics.recent_samples()
        assert [s["seq"] for s in samples] == [6, 7, 8, 9]
        assert [s["seq"] for s in metrics.recent_samples(limit=2)] == [8, 9]
        assert metrics.recent_samples(limit=0) == []

    def test_front_tier_ring_too(self):
        metrics = FrontTierMetrics(ring_capacity=2)
        metrics.sample()
        metrics.sample()
        metrics.sample()
        assert [s["seq"] for s in metrics.recent_samples()] == [1, 2]
