"""ServerMetrics counters and the latency histogram.

The stats snapshot is a wire document (served via the ``stats`` verb),
so its key set must be exact and stable; the histogram's percentiles
are upper bounds of log-spaced buckets.
"""

import math
import threading

from repro.api import ERROR_CODES
from repro.server import FrontTierMetrics, LatencyHistogram, ServerMetrics

SNAPSHOT_KEYS = {
    "coalesced", "completed", "connections", "errors", "inflight",
    "latency", "requests", "shed", "speculation", "tiers", "uptime_s",
    "warm_hits",
}
LATENCY_KEYS = {"count", "invalid", "mean_s", "p50_s", "p95_s", "p99_s",
                "max_s"}
VERB_KEYS = {"analyze", "execute", "stats", "subscribe", "unsubscribe"}


class TestLatencyHistogram:
    def test_empty_is_all_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {
            "count": 0, "invalid": 0, "mean_s": 0.0, "p50_s": 0.0,
            "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0,
        }

    def test_quantiles_are_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.003)
        snap = hist.snapshot()
        assert snap["count"] == 100
        # the bucket edge containing the sample bounds it from above,
        # within one bucket ratio (~1.55)
        assert 0.003 <= snap["p50_s"] <= 0.003 * 1.6
        assert snap["p50_s"] <= snap["p95_s"] <= snap["p99_s"]
        assert abs(snap["max_s"] - 0.003) < 1e-9
        assert abs(snap["mean_s"] - 0.003) < 1e-9

    def test_spread_sample_orders_percentiles(self):
        hist = LatencyHistogram()
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        snap = hist.snapshot()
        assert 0.050 <= snap["p50_s"] <= 0.100
        assert snap["p95_s"] >= 0.095 * 0.9
        assert snap["p50_s"] < snap["p95_s"] <= snap["p99_s"]

    def test_negative_clamped(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        assert hist.snapshot()["max_s"] == 0.0

    def test_non_finite_durations_rejected(self):
        # regression: a single NaN used to poison sum_s (every later
        # mean became NaN) and inf pinned max_s forever
        hist = LatencyHistogram()
        hist.observe(0.002)
        for poison in (float("nan"), float("inf"), float("-inf"), None, "x"):
            hist.observe(poison)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["invalid"] == 5
        assert math.isfinite(snap["mean_s"]) and snap["mean_s"] > 0
        assert snap["max_s"] == 0.002
        # the histogram keeps working after the bad samples
        hist.observe(0.004)
        assert hist.snapshot()["count"] == 2
        assert math.isfinite(hist.snapshot()["mean_s"])

    def test_state_is_sparse_and_cumulative(self):
        hist = LatencyHistogram()
        hist.observe(0.003)
        hist.observe(0.003)
        hist.observe(float("nan"))
        state = hist.state()
        assert state["total"] == 2
        assert state["invalid"] == 1
        assert sum(state["counts"].values()) == 2
        assert len(state["counts"]) == 1  # sparse: only hit buckets


class TestServerMetrics:
    def test_snapshot_schema_is_exact(self):
        snap = ServerMetrics().snapshot()
        assert set(snap) == SNAPSHOT_KEYS
        assert set(snap["latency"]) == LATENCY_KEYS
        assert set(snap["requests"]) == VERB_KEYS
        assert set(snap["errors"]) == ERROR_CODES
        assert snap["speculation"] == {"commits": 0, "rollbacks": 0}
        assert snap["tiers"] == {"tier0": 0, "tier1": 0}

    def test_tier_counters(self):
        metrics = ServerMetrics()
        metrics.tier("tier0")
        metrics.tier("tier0")
        metrics.tier("tier1")
        metrics.tier("warp9")  # unknown labels are ignored, not counted
        assert metrics.snapshot()["tiers"] == {"tier0": 2, "tier1": 1}

    def test_counter_lifecycle(self):
        metrics = ServerMetrics()
        metrics.connection_opened()
        metrics.request_received("analyze")
        metrics.request_admitted()
        assert metrics.snapshot()["inflight"] == 1
        metrics.request_completed(0.004)
        metrics.shed()
        metrics.coalesced()
        metrics.warm_hit()
        metrics.error("bad_request")
        metrics.connection_closed()
        snap = metrics.snapshot()
        assert snap["requests"]["analyze"] == 1
        assert snap["completed"] == 1
        assert snap["inflight"] == 0
        assert snap["connections"] == 0
        assert snap["shed"] == 1
        assert snap["coalesced"] == 1
        assert snap["warm_hits"] == 1
        assert snap["errors"]["overloaded"] == 1  # shed implies the code
        assert snap["errors"]["bad_request"] == 1
        assert snap["latency"]["count"] == 1

    def test_speculation_counters_accumulate(self):
        metrics = ServerMetrics()
        metrics.speculation(1, 0)
        metrics.speculation(0, 1)
        metrics.speculation(2, 0)
        assert metrics.snapshot()["speculation"] == {
            "commits": 3, "rollbacks": 1,
        }

    def test_unknown_verb_and_code_ignored(self):
        metrics = ServerMetrics()
        metrics.request_received("frobnicate")
        metrics.error("no_such_code")
        snap = metrics.snapshot()
        assert sum(snap["requests"].values()) == 0
        assert sum(snap["errors"].values()) == 0

    def test_connections_gauge_never_underflows(self):
        # regression: an unmatched close (teardown racing the open
        # accounting) used to drive the gauge to -1 forever
        metrics = ServerMetrics()
        metrics.connection_closed()
        assert metrics.snapshot()["connections"] == 0
        metrics.connection_opened()
        metrics.connection_closed()
        metrics.connection_closed()
        assert metrics.snapshot()["connections"] == 0
        metrics.connection_opened()  # next open still counts from zero
        assert metrics.snapshot()["connections"] == 1

    def test_front_tier_connections_gauge_never_underflows(self):
        metrics = FrontTierMetrics()
        metrics.connection_closed()
        metrics.connection_closed()
        assert metrics.snapshot()["connections"] == 0
        metrics.connection_opened()
        assert metrics.snapshot()["connections"] == 1

    def test_thread_safety_of_counters(self):
        metrics = ServerMetrics()

        def pound():
            for _ in range(500):
                metrics.request_received("execute")
                metrics.request_admitted()
                metrics.request_completed(0.001)

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        assert snap["requests"]["execute"] == 4000
        assert snap["completed"] == 4000
        assert snap["inflight"] == 0
        assert snap["latency"]["count"] == 4000


class TestSampleRing:
    def test_sample_shape_and_sequence(self):
        metrics = ServerMetrics()
        first = metrics.sample(gauges={"queue_depth": [0, 1]})
        second = metrics.sample(extra={"hot_shards": {"hot_digests": 0}})
        assert set(first) == {
            "seq", "uptime_s", "stats", "gauges", "extra", "latency_state",
        }
        assert first["seq"] == 0 and second["seq"] == 1
        assert first["gauges"] == {"queue_depth": [0, 1]}
        assert second["extra"] == {"hot_shards": {"hot_digests": 0}}
        assert set(first["stats"]) == SNAPSHOT_KEYS

    def test_ring_is_bounded_and_keeps_newest(self):
        metrics = ServerMetrics(ring_capacity=4)
        for _ in range(10):
            metrics.sample()
        samples = metrics.recent_samples()
        assert [s["seq"] for s in samples] == [6, 7, 8, 9]
        assert [s["seq"] for s in metrics.recent_samples(limit=2)] == [8, 9]
        assert metrics.recent_samples(limit=0) == []

    def test_front_tier_ring_too(self):
        metrics = FrontTierMetrics(ring_capacity=2)
        metrics.sample()
        metrics.sample()
        metrics.sample()
        assert [s["seq"] for s in metrics.recent_samples()] == [1, 2]
