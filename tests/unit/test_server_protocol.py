"""Schema stability of the serving additions to the wire protocol.

ErrorResponse and the stats verb follow the same contract as the
analyze/execute documents: serialize -> deserialize -> re-serialize is
byte-identical, the ``kind`` tag dispatches, unknown versions are
rejected, and error codes form a closed set.
"""

import json

import pytest

from repro.api import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ErrorResponse,
    StatsRequest,
    StatsResponse,
    request_from_json,
    response_from_json,
    wire_json,
)


def _roundtrip(document_text, reader):
    payload = json.loads(document_text)
    return reader(payload).canonical_text()


class TestErrorResponse:
    def test_roundtrip_is_byte_identical(self):
        response = ErrorResponse(
            "overloaded", "worker 3 queue full; retry later", retryable=True
        )
        text = response.canonical_text()
        assert _roundtrip(text, ErrorResponse.from_json) == text
        assert _roundtrip(text, response_from_json) == text

    def test_every_code_serializes(self):
        for code in sorted(ERROR_CODES):
            response = ErrorResponse(code, f"detail for {code}")
            again = response_from_json(json.loads(response.canonical_text()))
            assert again.code == code
            assert again.canonical_text() == response.canonical_text()

    def test_malformed_code_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            ErrorResponse("", "nope")
        with pytest.raises(ValueError, match="non-empty string"):
            ErrorResponse(None, "nope")

    def test_foreign_code_is_tolerated(self):
        # a newer server may add codes; older clients must still decode
        payload = {"kind": "error", "version": PROTOCOL_VERSION,
                   "code": "rate_limited", "message": "slow down",
                   "retryable": True}
        decoded = ErrorResponse.from_json(payload)
        assert decoded.code == "rate_limited"
        assert json.loads(decoded.canonical_text()) == payload

    def test_foreign_version_is_still_decodable(self):
        # a version-skewed client must be able to read the error
        # document telling it about the skew; the foreign version is
        # preserved so re-serialization stays byte-identical
        payload = ErrorResponse("unsupported_version", "speak v99").to_json()
        payload["version"] = PROTOCOL_VERSION + 1
        decoded = ErrorResponse.from_json(payload)
        assert decoded.code == "unsupported_version"
        assert decoded.version == PROTOCOL_VERSION + 1
        assert json.loads(decoded.canonical_text()) == payload

    def test_retryable_defaults_false(self):
        payload = ErrorResponse("bad_request", "x").to_json()
        del payload["retryable"]
        assert ErrorResponse.from_json(payload).retryable is False


class TestStatsVerb:
    def test_request_roundtrip_and_dispatch(self):
        request = StatsRequest()
        text = request.canonical_text()
        again = request_from_json(json.loads(text))
        assert isinstance(again, StatsRequest)
        assert again.canonical_text() == text

    def test_response_roundtrip_is_byte_identical(self):
        response = StatsResponse(
            stats={"completed": 7, "latency": {"p50_s": 0.001}, "shed": 0}
        )
        text = response.canonical_text()
        assert _roundtrip(text, StatsResponse.from_json) == text
        assert _roundtrip(text, response_from_json) == text

    def test_unknown_version_rejected(self):
        payload = StatsRequest().to_json()
        payload["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(ValueError, match="protocol version"):
            StatsRequest.from_json(payload)


class TestWireJson:
    def test_single_line(self):
        text = wire_json({"a": [1, 2], "nested": {"b": "x\ny"}})
        assert "\n" not in text

    def test_same_document_as_canonical(self):
        from repro.api import canonical_json

        payload = ErrorResponse("too_large", "4MiB limit").to_json()
        assert json.loads(wire_json(payload)) == json.loads(canonical_json(payload))

    def test_sorted_and_deterministic(self):
        payload = {"z": 1, "a": 2, "m": {"y": 3, "b": 4}}
        assert wire_json(payload) == wire_json(dict(reversed(list(payload.items()))))
        assert wire_json(payload).index('"a"') < wire_json(payload).index('"z"')
