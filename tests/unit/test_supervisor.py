"""Backend process supervision: spawn, ready parsing, crash restart
with backoff, draining stop, chaos kill."""

import signal
import sys
import time

import pytest

from repro.server import BackendSupervisor


def _script_command(body):
    """A command factory running *body* as a fake backend."""
    def command(index):
        return [sys.executable, "-u", "-c", body.format(index=index)]
    return command


#: A fake backend that binds nothing but speaks the ready line and
#: exits cleanly on SIGINT, like the real server.
_WELL_BEHAVED = """
import signal, sys, time
signal.signal(signal.SIGINT, lambda *a: sys.exit(0))
print("repro-serve: listening on 127.0.0.1:{index}", flush=True)
while True:
    time.sleep(0.1)
"""

#: A backend that dies immediately, before ever binding.
_CRASH_LOOP = """
import sys
sys.exit(3)
"""


def _wait(predicate, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestSupervisor:
    def test_rejects_zero_backends(self):
        with pytest.raises(ValueError):
            BackendSupervisor(0, _script_command(_WELL_BEHAVED))

    def test_spawns_and_parses_ready_line(self):
        supervisor = BackendSupervisor(
            2, _script_command(_WELL_BEHAVED), backoff_base=0.05
        ).start()
        try:
            assert supervisor.wait_up(timeout_s=30)
            statuses = supervisor.statuses()
            assert [s.state for s in statuses] == ["up", "up"]
            # the fake backend advertises its index as its port
            assert supervisor.address(0) == ("127.0.0.1", 0)
            assert supervisor.address(1) == ("127.0.0.1", 1)
            assert all(s.pid is not None for s in statuses)
            assert all(s.restarts == 0 for s in statuses)
        finally:
            supervisor.stop(grace_s=5)
        assert [s.state for s in supervisor.statuses()] == ["stopped", "stopped"]

    def test_on_up_callback_fires_with_address(self):
        seen = []
        supervisor = BackendSupervisor(
            1, _script_command(_WELL_BEHAVED),
            on_up=lambda i, h, p: seen.append((i, h, p)),
        ).start()
        try:
            assert supervisor.wait_up(timeout_s=30)
            assert _wait(lambda: seen == [(0, "127.0.0.1", 0)])
        finally:
            supervisor.stop(grace_s=5)

    def test_crash_restarts_with_backoff(self):
        supervisor = BackendSupervisor(
            1, _script_command(_CRASH_LOOP),
            backoff_base=0.01, backoff_cap=0.05,
        ).start()
        try:
            assert _wait(
                lambda: supervisor.statuses()[0].restarts >= 3, timeout_s=30
            )
            status = supervisor.statuses()[0]
            assert status.state in ("backoff", "starting")
            assert "exited with code 3" in status.last_error
        finally:
            supervisor.stop(grace_s=5)

    def test_kill_triggers_restart_and_counts(self):
        supervisor = BackendSupervisor(
            1, _script_command(_WELL_BEHAVED),
            backoff_base=0.01, backoff_cap=0.05,
        ).start()
        try:
            assert supervisor.wait_up(timeout_s=30)
            first_pid = supervisor.statuses()[0].pid
            deaths = []
            supervisor.on_down = lambda i: deaths.append(i)
            assert supervisor.kill(0, signal.SIGKILL) == first_pid
            assert _wait(
                lambda: supervisor.statuses()[0].state == "up"
                and supervisor.statuses()[0].pid != first_pid,
                timeout_s=30,
            )
            assert supervisor.statuses()[0].restarts == 1
            assert deaths == [0]
        finally:
            supervisor.stop(grace_s=5)

    def test_kill_on_dead_backend_returns_none(self):
        supervisor = BackendSupervisor(1, _script_command(_WELL_BEHAVED))
        assert supervisor.kill(0) is None  # never started

    def test_stop_terminates_promptly_and_is_idempotent(self):
        supervisor = BackendSupervisor(
            2, _script_command(_WELL_BEHAVED)
        ).start()
        assert supervisor.wait_up(timeout_s=30)
        pids = [s.pid for s in supervisor.statuses()]
        started = time.monotonic()
        supervisor.stop(grace_s=10)
        assert time.monotonic() - started < 10
        supervisor.stop(grace_s=1)  # second stop is a no-op
        import os

        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
