"""Unit tests for IR-to-symbolic conversion and the CIVagg machinery."""

import pytest

from repro.ir import parse_expression, parse_program, to_bool, to_expr
from repro.ir.civagg import (
    civ_increments_nonneg,
    collect_increments,
)
from repro.symbolic import ArrayRef, as_expr, sym


class TestToExpr:
    def test_arithmetic(self):
        e = to_expr(parse_expression("2*i + j - 3"), {})
        assert e == 2 * sym("i") + sym("j") - 3

    def test_env_substitution(self):
        e = to_expr(parse_expression("i + 1"), {"i": sym("k") * 2})
        assert e == 2 * sym("k") + 1

    def test_array_read(self):
        e = to_expr(parse_expression("B[i+1]"), {})
        assert e == ArrayRef("B", [sym("i") + 1]).as_expr()

    def test_renames(self):
        e = to_expr(parse_expression("B[1]"), {}, renames={"B": "C"})
        assert e == ArrayRef("C", [as_expr(1)]).as_expr()

    def test_constant_division(self):
        e = to_expr(parse_expression("(4*i) / 2"), {})
        assert e == 2 * sym("i")

    def test_symbolic_division_fails(self):
        assert to_expr(parse_expression("i / j"), {}) is None

    def test_modulo_fails(self):
        assert to_expr(parse_expression("i % 3"), {}) is None

    def test_boolean_in_arith_position_fails(self):
        assert to_expr(parse_expression("(a < b) + 1"), {}) is None

    def test_min_max(self):
        e = to_expr(parse_expression("min(i, j)"), {})
        assert e.evaluate({"i": 3, "j": 7}) == 3


class TestToBool:
    def test_comparison(self):
        b = to_bool(parse_expression("i <= N"), {})
        assert b.evaluate({"i": 3, "N": 3})
        assert not b.evaluate({"i": 4, "N": 3})

    def test_connectives(self):
        b = to_bool(parse_expression("a > 0 and not b == 1"), {})
        assert b.evaluate({"a": 1, "b": 0})
        assert not b.evaluate({"a": 1, "b": 1})

    def test_truthiness_of_integer(self):
        b = to_bool(parse_expression("x"), {})
        assert b.evaluate({"x": 5})
        assert not b.evaluate({"x": 0})

    def test_unconvertible(self):
        assert to_bool(parse_expression("(i % 2) > 0"), {}) is None


def _body(src):
    prog = parse_program(f"""
program t
param N, Q
array A(256), NSP(64), X(64)
main
{src}
end
""")
    return prog.find_loop("l").body


class TestCollectIncrements:
    def test_single_gated(self):
        body = _body("""
  civ = Q
  do i = 1, N @ l
    if NSP[i] > 0 then
      civ = civ + NSP[i]
    end
  end
""")
        incs = collect_increments(body, "civ", {"i": sym("i")})
        assert incs is not None and len(incs) == 1
        gate, inc = incs[0]
        assert gate is not None
        assert inc == ArrayRef("NSP", [sym("i")]).as_expr()

    def test_ungated(self):
        body = _body("""
  do i = 1, N @ l
    civ = civ + 2
  end
""")
        incs = collect_increments(body, "civ", {"i": sym("i")})
        assert incs == [(None, as_expr(2))]

    def test_non_increment_rejected(self):
        body = _body("""
  do i = 1, N @ l
    civ = civ * 2
  end
""")
        assert collect_increments(body, "civ", {"i": sym("i")}) is None

    def test_nested_loop_accumulation_rejected(self):
        body = _body("""
  do i = 1, N @ l
    do j = 1, 3
      civ = civ + 1
    end
  end
""")
        assert collect_increments(body, "civ", {"i": sym("i")}) is None

    def test_nonneg_constant(self):
        body = _body("""
  do i = 1, N @ l
    civ = civ + 2
  end
""")
        assert civ_increments_nonneg(body, "civ", {"i": sym("i")})

    def test_nonneg_from_gate(self):
        body = _body("""
  do i = 1, N @ l
    if NSP[i] > 0 then
      civ = civ + NSP[i]
    end
  end
""")
        assert civ_increments_nonneg(body, "civ", {"i": sym("i")})

    def test_unknown_sign_rejected(self):
        body = _body("""
  do i = 1, N @ l
    if X[i] > 0 then
      civ = civ + NSP[i]
    end
  end
""")
        assert not civ_increments_nonneg(body, "civ", {"i": sym("i")})

    def test_nonneg_from_index_bounds(self):
        body = _body("""
  do i = 1, N @ l
    civ = civ + i
  end
""")
        bounds = {"i": (as_expr(1), sym("N"))}
        assert civ_increments_nonneg(body, "civ", {"i": sym("i")}, bounds)
