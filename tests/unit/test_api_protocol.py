"""Schema stability of the repro.api wire protocol.

The contract: serialize -> deserialize -> re-serialize is byte-identical
for every request/response type, the ``kind`` tag dispatches correctly,
and unknown protocol versions are rejected rather than guessed at.
"""

import json

import pytest

from repro.api import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    AnalyzeResponse,
    Engine,
    EngineConfig,
    ExecuteRequest,
    ExecuteResponse,
    request_from_json,
    response_from_json,
)

SOURCE = """
program proto
param N, K
array A(300), B(300), IDX(300)

main
  do i = 1, N @ target
    t = B[i] + K
    A[IDX[i]] = A[IDX[i]] + t
  end
end
"""

PARAMS = {"N": 12, "K": 3}
ARRAYS = {"IDX": [(i % 5) + 1 for i in range(300)], "B": [1] * 300}


@pytest.fixture(scope="module")
def engine():
    return Engine(EngineConfig(use_disk_cache=False))


def _roundtrip(document_text, reader):
    payload = json.loads(document_text)
    again = reader(payload)
    return again.canonical_text()


def test_analyze_response_roundtrip_is_byte_identical(engine):
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="target"))
    text = response.canonical_text()
    assert _roundtrip(text, lambda p: AnalyzeResponse.from_json(p)) == text
    # the generic reader agrees with the typed one
    assert _roundtrip(text, response_from_json) == text


def test_execute_response_roundtrip_is_byte_identical(engine):
    response = engine.execute(
        ExecuteRequest(source=SOURCE, loop="target", params=PARAMS, arrays=ARRAYS)
    )
    text = response.canonical_text()
    assert _roundtrip(text, lambda p: ExecuteResponse.from_json(p)) == text
    assert _roundtrip(text, response_from_json) == text


def test_request_roundtrip_and_dispatch():
    areq = AnalyzeRequest(source=SOURCE, loop="target", options={"size_cap": 500})
    xreq = ExecuteRequest(
        source=SOURCE, loop="target", params=PARAMS, arrays=ARRAYS,
        exact_strategy="tls",
    )
    for req in (areq, xreq):
        text = req.canonical_text()
        again = request_from_json(json.loads(text))
        assert type(again) is type(req)
        assert again == req
        assert again.canonical_text() == text


def test_cached_flag_never_serialized(engine):
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="target"))
    payload = response.to_json()
    assert "cached" not in json.dumps(payload)
    assert AnalyzeResponse.from_json(payload, cached=True).cached is True
    assert AnalyzeResponse.from_json(payload).cached is False


def test_unknown_version_is_rejected(engine):
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="target"))
    payload = response.to_json()
    payload["version"] = PROTOCOL_VERSION + 1
    with pytest.raises(ValueError, match="protocol version"):
        AnalyzeResponse.from_json(payload)
    with pytest.raises(ValueError, match="unknown request kind"):
        request_from_json({"kind": "frobnicate"})


def test_analyze_response_content(engine):
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="target"))
    assert response.loop == "target"
    assert response.version == PROTOCOL_VERSION
    names = [a.array for a in response.arrays]
    assert names == sorted(names)
    reduction = next(a for a in response.arrays if a.array == "A")
    assert reduction.transform == "reduction"


#: A runtime-dependent scatter: duplicate indices with no exposed
#: reads, so the cascade cannot validate it but the speculative backend
#: commits with the written array privatized -- the shape that fills
#: every v4 speculation field at once.
_SPEC_SOURCE = """
program specproto
param N
array A(N), B(N), IDX(N)

main
  do i = 1, N @ target
    B[IDX[i]] = A[i] + 1
  end
end
"""


def test_v4_speculation_fields_serialize(engine):
    response = engine.execute(
        ExecuteRequest(
            source=_SPEC_SOURCE, loop="target",
            params={"N": 20},
            arrays={"IDX": [(i % 6) + 1 for i in range(20)],
                    "A": [i % 4 for i in range(20)]},
            backend="speculative", jobs=2,
        )
    )
    payload = response.to_json()
    assert payload["version"] == PROTOCOL_VERSION
    assert payload["speculation_commits"] == 1
    assert payload["speculation_rollbacks"] == 0
    assert payload["speculation_privatized"] == ["B"]
    # byte-identical roundtrip with the new fields populated
    text = response.canonical_text()
    assert _roundtrip(text, lambda p: ExecuteResponse.from_json(p)) == text
    # a v4 document without the fields still reads (defaults apply)
    for key in (
        "speculation_commits", "speculation_rollbacks",
        "speculation_privatized",
    ):
        payload.pop(key)
    slim = ExecuteResponse.from_json(payload)
    assert slim.speculation_commits == 0
    assert slim.speculation_rollbacks == 0
    assert slim.speculation_privatized == []


def test_execute_response_matches_report(engine):
    compiled = engine.compile(SOURCE)
    report = compiled.execute("target", PARAMS, ARRAYS)
    response = engine.execute(
        ExecuteRequest(source=SOURCE, loop="target", params=PARAMS, arrays=ARRAYS)
    )
    assert response.parallel == report.parallel
    assert response.correct == report.correct
    assert response.trips == len(report.iteration_costs)
    assert set(response.decisions) == set(report.decisions)


def test_v5_tier_fields_serialize(engine):
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="target"))
    payload = response.to_json()
    assert payload["version"] == PROTOCOL_VERSION
    assert payload["tier_used"] in ("tier0", "tier1")
    assert payload["screening"] in ("resolved", "escalated")
    # provenance coherence on the wire: tier0 iff the screen resolved,
    # and an escalation reason appears exactly on escalation
    resolved = payload["screening"] == "resolved"
    assert (payload["tier_used"] == "tier0") == resolved
    assert (payload["escalation_reason"] == "") == resolved
    # byte-identical roundtrip with the new fields populated
    text = response.canonical_text()
    assert _roundtrip(text, lambda p: AnalyzeResponse.from_json(p)) == text


def test_v5_tier_fields_default_for_older_documents(engine):
    """A pre-v5 reader re-serializing a v5 document would drop the tier
    fields; a v5 reader of such a document must fall back to the
    defaults rather than fail (additive, default-tolerant evolution)."""
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="target"))
    payload = response.to_json()
    for key in ("tier_used", "screening", "escalation_reason"):
        payload.pop(key)
    slim = AnalyzeResponse.from_json(payload)
    assert slim.tier_used == "tier1"
    assert slim.screening == "off"
    assert slim.escalation_reason == ""


def test_tiering_request_option_roundtrips():
    request = AnalyzeRequest(
        source=SOURCE, loop="target", options={"tiering": False}
    )
    payload = json.loads(request.canonical_text())
    assert payload["options"] == {"tiering": False}
    again = request_from_json(payload)
    assert again.options == {"tiering": False}


def test_v6_subscribe_roundtrip_and_dispatch():
    from repro.api import SubscribeRequest, UnsubscribeRequest

    sub = SubscribeRequest(interval_s=0.25, frames=5, history=16)
    unsub = UnsubscribeRequest()
    for req in (sub, unsub):
        text = req.canonical_text()
        again = request_from_json(json.loads(text))
        assert type(again) is type(req)
        assert again == req
        assert again.canonical_text() == text
    payload = json.loads(sub.canonical_text())
    assert payload["kind"] == "subscribe"
    assert payload["version"] == PROTOCOL_VERSION


def test_v6_subscribe_fields_default_tolerant():
    from repro.api import SubscribeRequest

    bare = request_from_json(
        {"kind": "subscribe", "version": PROTOCOL_VERSION}
    )
    assert bare == SubscribeRequest()
    assert bare.interval_s == 1.0
    assert bare.frames == 0 and bare.history == 0
    with pytest.raises(ValueError, match="interval_s"):
        request_from_json({
            "kind": "subscribe", "version": PROTOCOL_VERSION,
            "interval_s": 0,
        })
    with pytest.raises(ValueError, match="frames"):
        request_from_json({
            "kind": "subscribe", "version": PROTOCOL_VERSION, "frames": -1,
        })


def test_v6_metrics_frame_roundtrip_and_defaults():
    from repro.api import MetricsFrame, UnsubscribeResponse

    frame = MetricsFrame(
        seq=3,
        stream={"counters": {"completed": 7}, "topology": "threads"},
        elapsed_s=0.5,
        final=True,
        history=[{"seq": 0, "shed": 1}],
    )
    text = frame.canonical_text()
    again = response_from_json(json.loads(text))
    assert type(again) is MetricsFrame
    assert again == frame
    assert again.canonical_text() == text
    # absent optional fields read as their v5-style defaults
    slim = response_from_json(
        {"kind": "metrics", "version": PROTOCOL_VERSION, "seq": 0}
    )
    assert slim.final is False
    assert slim.history == [] and slim.stream == {}
    assert slim.elapsed_s == 0.0
    ack = response_from_json(
        {"kind": "unsubscribed", "version": PROTOCOL_VERSION}
    )
    assert ack == UnsubscribeResponse(frames=0)
