"""Unit tests for boolean leaf predicates."""

import pytest

from repro.symbolic import (
    FALSE,
    TRUE,
    AndB,
    Cmp,
    Divides,
    OrB,
    b_and,
    b_not,
    b_or,
    cmp_eq,
    cmp_ge,
    cmp_gt,
    cmp_le,
    cmp_lt,
    cmp_ne,
    divides,
    ge0,
    gt0,
    sym,
)


class TestComparisons:
    def test_constant_fold_true(self):
        assert cmp_lt(2, 3).is_true()
        assert cmp_ge(3, 3).is_true()
        assert cmp_eq(4, 4).is_true()

    def test_constant_fold_false(self):
        assert cmp_gt(2, 3).is_false()
        assert cmp_ne(4, 4).is_false()

    def test_canonical_lt_as_gt(self):
        x = sym("x")
        # x < y  ==  y > x : both canonicalize the same way
        assert cmp_lt(x, sym("y")) == cmp_gt(sym("y"), x)

    def test_gcd_normalization(self):
        n = sym("N")
        assert cmp_ge(2 * n, 4) == cmp_ge(n, 2)

    def test_evaluation(self):
        p = cmp_le(sym("NS"), 16 * sym("NP"))
        assert p.evaluate({"NS": 16, "NP": 1})
        assert not p.evaluate({"NS": 17, "NP": 1})

    def test_negation_involution(self):
        p = cmp_gt(sym("x"), 3)
        assert b_not(b_not(p)) == p

    def test_negation_semantics(self):
        p = cmp_gt(sym("x"), 3)
        q = b_not(p)
        for v in (2, 3, 4):
            assert p.evaluate({"x": v}) != q.evaluate({"x": v})

    def test_eq_ne_negation(self):
        p = cmp_eq(sym("x"), 0)
        assert b_not(p) == cmp_ne(sym("x"), 0)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Cmp(sym("x"), "<")


class TestDivides:
    def test_constant_fold(self):
        assert divides(3, 9).is_true()
        assert divides(3, 10).is_false()

    def test_unit_divisor(self):
        assert divides(1, sym("x")).is_true()

    def test_all_coeffs_divisible(self):
        assert divides(2, 4 * sym("x") + 6).is_true()

    def test_symbolic(self):
        p = divides(2, sym("x") + 1)
        assert isinstance(p, Divides)
        assert p.evaluate({"x": 1})
        assert not p.evaluate({"x": 2})

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            divides(0, sym("x"))


class TestConnectives:
    def test_and_true_unit(self):
        p = gt0(sym("x"))
        assert b_and(TRUE, p) == p

    def test_and_false_absorbs(self):
        assert b_and(gt0(sym("x")), FALSE).is_false()

    def test_or_false_unit(self):
        p = gt0(sym("x"))
        assert b_or(FALSE, p) == p

    def test_or_true_absorbs(self):
        assert b_or(gt0(sym("x")), TRUE).is_true()

    def test_flattening(self):
        a, b, c = gt0(sym("a")), gt0(sym("b")), gt0(sym("c"))
        nested = b_and(a, b_and(b, c))
        assert isinstance(nested, AndB)
        assert len(nested.args) == 3

    def test_dedup(self):
        a = gt0(sym("a"))
        assert b_or(a, a) == a

    def test_absorption_or(self):
        a, b = gt0(sym("a")), gt0(sym("b"))
        assert b_or(a, b_and(a, b)) == a

    def test_absorption_and(self):
        a, b = gt0(sym("a")), gt0(sym("b"))
        assert b_and(a, b_or(a, b)) == a

    def test_complementary_or_folds_true(self):
        p = cmp_eq(sym("x"), 3)
        assert b_or(p, b_not(p)).is_true()

    def test_complementary_gt(self):
        p = cmp_gt(sym("x"), 3)
        assert b_or(p, b_not(p)).is_true()

    def test_de_morgan(self):
        a, b = gt0(sym("a")), gt0(sym("b"))
        assert b_not(b_and(a, b)) == b_or(b_not(a), b_not(b))
        assert b_not(b_or(a, b)) == b_and(b_not(a), b_not(b))

    def test_and_evaluation(self):
        p = b_and(gt0(sym("a")), gt0(sym("b")))
        assert p.evaluate({"a": 1, "b": 1})
        assert not p.evaluate({"a": 1, "b": 0})

    def test_or_evaluation(self):
        p = b_or(gt0(sym("a")), gt0(sym("b")))
        assert p.evaluate({"a": 0, "b": 1})
        assert not p.evaluate({"a": 0, "b": 0})

    def test_substitute(self):
        p = b_and(gt0(sym("a")), ge0(sym("b") - sym("a")))
        q = p.substitute({"a": sym("c") + 1})
        assert q.evaluate({"c": 0, "b": 1})

    def test_nary_requires_two(self):
        with pytest.raises(ValueError):
            AndB([TRUE])

    def test_key_is_order_insensitive(self):
        a, b = gt0(sym("a")), gt0(sym("b"))
        assert b_and(a, b) == b_and(b, a)
        assert b_or(a, b) == b_or(b, a)
