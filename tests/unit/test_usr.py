"""Unit tests for USR nodes, smart constructors, and exact evaluation."""

import pytest

from repro.lmad import interval, point
from repro.symbolic import TRUE, cmp_eq, cmp_ge, cmp_ne, sym
from repro.usr import (
    EMPTY,
    CallSite,
    Gate,
    Intersect,
    Leaf,
    Recurrence,
    Subtract,
    Union,
    usr_call,
    usr_gate,
    usr_intersect,
    usr_leaf,
    usr_recurrence,
    usr_subtract,
    usr_union,
)

A = usr_leaf(interval(1, 10))
B = usr_leaf(interval(5, 15))
C = usr_leaf(interval(20, 30))


class TestConstructors:
    def test_union_flattens_and_merges_leaves(self):
        u = usr_union(A, usr_union(B, C))
        assert isinstance(u, Leaf)  # adjacent leaves merge into one
        assert u.evaluate({}) == set(range(1, 16)) | set(range(20, 31))

    def test_union_drops_empty(self):
        assert usr_union(EMPTY, A) == A

    def test_union_empty(self):
        assert usr_union().is_empty_leaf()

    def test_intersect_idempotent(self):
        assert usr_intersect(A, A) == A

    def test_intersect_empty_propagates(self):
        assert usr_intersect(A, EMPTY).is_empty_leaf()

    def test_subtract_identity(self):
        assert usr_subtract(A, EMPTY) == A
        assert usr_subtract(EMPTY, A).is_empty_leaf()
        assert usr_subtract(A, A).is_empty_leaf()

    def test_subtract_regroups(self):
        """(A - B) - C  ->  A - (B u C): the Section 3.4 reshaping."""
        s = usr_subtract(usr_subtract(A, B), C)
        assert isinstance(s, Subtract)
        assert s.left == A
        assert s.right.evaluate({}) == B.evaluate({}) | C.evaluate({})

    def test_gate_folds_constants(self):
        assert usr_gate(TRUE, A) == A
        from repro.symbolic import FALSE

        assert usr_gate(FALSE, A).is_empty_leaf()

    def test_gate_fuses_nested(self):
        g = usr_gate(cmp_ne(sym("x"), 1), usr_gate(cmp_ge(sym("y"), 0), A))
        assert isinstance(g, Gate)
        assert isinstance(g.body, Leaf)

    def test_call_barrier(self):
        c = usr_call("foo", A)
        assert isinstance(c, CallSite)
        assert c.evaluate({}) == A.evaluate({})

    def test_recurrence_exact_aggregation(self):
        r = usr_recurrence("i", 1, sym("N"), usr_leaf(point(sym("i"))))
        # Aggregates into a gated leaf, not a Recurrence node.
        assert not isinstance(r, Recurrence)
        assert r.evaluate({"N": 5}) == {1, 2, 3, 4, 5}

    def test_recurrence_invariant_body(self):
        r = usr_recurrence("i", 1, sym("N"), A)
        assert r.evaluate({"N": 3}) == A.evaluate({})
        assert r.evaluate({"N": 0}) == set()  # empty range gate

    def test_recurrence_irreducible(self):
        from repro.symbolic import ArrayRef

        body = usr_leaf(point(ArrayRef("B", [sym("i")])))
        r = usr_recurrence("i", 1, sym("N"), body)
        assert isinstance(r, Recurrence)
        assert r.evaluate({"N": 3, "B": [7, 7, 9]}) == {7, 9}


class TestEvaluation:
    def test_gate_semantics(self):
        g = usr_gate(cmp_eq(sym("s"), 1), A)
        assert g.evaluate({"s": 1}) == A.evaluate({})
        assert g.evaluate({"s": 0}) == set()

    def test_subtract_semantics(self):
        s = usr_subtract(A, B)
        assert s.evaluate({}) == {1, 2, 3, 4}

    def test_intersect_semantics(self):
        s = usr_intersect(A, B)
        assert s.evaluate({}) == {5, 6, 7, 8, 9, 10}

    def test_nested_recurrences(self):
        inner = usr_recurrence(
            "j", 1, sym("i"), usr_leaf(point(sym("i") * 10 + sym("j")))
        )
        outer = usr_recurrence("i", 1, 3, inner)
        expected = {i * 10 + j for i in range(1, 4) for j in range(1, i + 1)}
        assert outer.evaluate({}) == expected

    def test_partial_recurrence_flag_roundtrip(self):
        from repro.symbolic import ArrayRef

        body = usr_leaf(point(ArrayRef("B", [sym("k")])))
        r = usr_recurrence("k", 1, sym("i") - 1, body, partial=True)
        assert isinstance(r, Recurrence) and r.partial

    def test_substitute(self):
        r = usr_gate(cmp_ge(sym("N"), 1), usr_leaf(interval(1, sym("N"))))
        out = r.substitute({"N": sym("M") * 2})
        assert out.evaluate({"M": 2}) == {1, 2, 3, 4}

    def test_substitute_respects_binding(self):
        from repro.symbolic import ArrayRef

        body = usr_leaf(point(ArrayRef("B", [sym("i")])))
        r = usr_recurrence("i", 1, sym("N"), body)
        out = r.substitute({"i": sym("ZZZ")})  # bound: must not substitute
        assert out == r

    def test_loop_depth(self):
        from repro.symbolic import ArrayRef

        body = usr_leaf(point(ArrayRef("B", [sym("i")])))
        r = usr_recurrence("i", 1, sym("N"), body)
        assert r.loop_depth() == 1
        assert A.loop_depth() == 0

    def test_node_count(self):
        s = usr_subtract(A, B)
        assert s.node_count() == 3
