"""End-to-end serving: wire equivalence, error paths, pipelining,
shedding, stats, graceful shutdown, and the concurrent soak.

The load-bearing contract: anything served over the socket is
byte-identical (canonical text) to calling ``Engine.serve`` directly
in-process, and every malformed/oversized/overload condition yields a
structured error response on a connection that stays usable.
"""

import json
import random
import socket
import threading

import pytest

from repro.api import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    Engine,
    EngineConfig,
    ErrorResponse,
    ExecuteRequest,
    StatsResponse,
    wire_json,
)
from repro.server import (
    ServerClient,
    ServerThread,
    build_mix,
    make_request,
    run_load,
)

SOURCE = """
program server_test
param N
array A(200), B(200), IDX(200)

main
  do i = 1, N @ target
    t = B[i] + 1
    A[IDX[i]] = A[IDX[i]] + t
  end
end
"""

PARAMS = {"N": 20}
ARRAYS = {"IDX": [(i % 7) + 1 for i in range(200)], "B": [2] * 200}


@pytest.fixture(scope="module")
def hosted():
    thread = ServerThread(
        workers=3, engine_config=EngineConfig(use_disk_cache=False)
    ).start()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def reference():
    return Engine(EngineConfig(use_disk_cache=False))


def _client(hosted):
    host, port = hosted.address
    return ServerClient(host, port)


class TestWireEquivalence:
    def test_analyze_matches_in_process(self, hosted, reference):
        request = AnalyzeRequest(source=SOURCE, loop="target")
        with _client(hosted) as client:
            served = client.call(request)
        assert served.canonical_text() == reference.serve(request).canonical_text()

    def test_execute_matches_in_process(self, hosted, reference):
        request = ExecuteRequest(
            source=SOURCE, loop="target", params=PARAMS, arrays=ARRAYS
        )
        with _client(hosted) as client:
            served = client.call(request)
        assert served.canonical_text() == reference.serve(request).canonical_text()

    def test_mixed_programs_match(self, hosted, reference):
        mix = build_mix(seed=11, programs=6)
        rng = random.Random(11)
        with _client(hosted) as client:
            for _ in range(24):
                request = make_request(rng, mix, analyze_fraction=0.75)
                served = client.call(request)
                expected = reference.serve(request)
                assert served.canonical_text() == expected.canonical_text()


class TestErrorPaths:
    def test_malformed_json(self, hosted):
        with _client(hosted) as client:
            client.send_line("{not json")
            response = client.recv()
            assert isinstance(response, ErrorResponse)
            assert response.code == "malformed"
            assert response.retryable is False

    def test_non_object_payload(self, hosted):
        with _client(hosted) as client:
            client.send_line("[1, 2, 3]")
            assert client.recv().code == "malformed"

    def test_wrong_protocol_version(self, hosted):
        with _client(hosted) as client:
            client.send_line(wire_json({
                "kind": "analyze", "version": PROTOCOL_VERSION + 1,
                "source": SOURCE, "loop": "target",
            }))
            response = client.recv()
            assert response.code == "unsupported_version"
            assert str(PROTOCOL_VERSION) in response.message

    def test_unknown_verb(self, hosted):
        with _client(hosted) as client:
            client.send_line(wire_json({
                "kind": "frobnicate", "version": PROTOCOL_VERSION,
            }))
            assert client.recv().code == "unknown_verb"

    def test_missing_field_is_bad_request(self, hosted):
        with _client(hosted) as client:
            client.send_line(wire_json({
                "kind": "analyze", "version": PROTOCOL_VERSION,
            }))  # no source/loop
            assert client.recv().code == "bad_request"

    def test_non_string_source_is_bad_request(self, hosted):
        with _client(hosted) as client:
            client.send_line(wire_json({
                "kind": "analyze", "version": PROTOCOL_VERSION,
                "source": 123, "loop": "target",
            }))
            assert client.recv().code == "bad_request"
            client.send_line(wire_json({
                "kind": "execute", "version": PROTOCOL_VERSION,
                "source": SOURCE, "loop": None,
            }))
            assert client.recv().code == "bad_request"
            # the connection survived both
            response = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert not isinstance(response, ErrorResponse)

    def test_mistyped_container_fields_are_bad_requests(self, hosted):
        """Non-object params/arrays/options/chunk must never escape as
        an unhandled exception (the connection survives every one)."""
        bad_payloads = [
            {"kind": "execute", "version": PROTOCOL_VERSION,
             "source": SOURCE, "loop": "target", "arrays": [1, 2]},
            {"kind": "execute", "version": PROTOCOL_VERSION,
             "source": SOURCE, "loop": "target", "arrays": {"A": 7}},
            {"kind": "execute", "version": PROTOCOL_VERSION,
             "source": SOURCE, "loop": "target", "params": "N=4"},
            {"kind": "execute", "version": PROTOCOL_VERSION,
             "source": SOURCE, "loop": "target", "chunk": "static"},
            {"kind": "analyze", "version": PROTOCOL_VERSION,
             "source": SOURCE, "loop": "target", "options": [1]},
        ]
        with _client(hosted) as client:
            for payload in bad_payloads:
                client.send_line(wire_json(payload))
                assert client.recv().code == "bad_request", payload
            response = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert not isinstance(response, ErrorResponse)

    def test_unknown_loop_is_bad_request(self, hosted):
        with _client(hosted) as client:
            response = client.call(
                AnalyzeRequest(source=SOURCE, loop="no_such_loop")
            )
            assert isinstance(response, ErrorResponse)
            assert response.code == "bad_request"

    def test_error_schema_is_stable(self, hosted):
        with _client(hosted) as client:
            client.send_line("oops")
            payload = client.recv_raw()
        assert set(payload) == {"kind", "version", "code", "message", "retryable"}
        assert payload["kind"] == "error"
        assert payload["version"] == PROTOCOL_VERSION

    def test_connection_survives_every_error(self, hosted, reference):
        request = AnalyzeRequest(source=SOURCE, loop="target")
        with _client(hosted) as client:
            for bad in ("junk", "[]", '{"kind": "x", "version": 3}'):
                client.send_line(bad)
                assert isinstance(client.recv(), ErrorResponse)
            served = client.call(request)
            assert served.canonical_text() == \
                reference.serve(request).canonical_text()


class TestOversizedRequests:
    def test_too_large_then_resync(self, reference):
        hosted = ServerThread(
            workers=1,
            engine_config=EngineConfig(use_disk_cache=False),
            max_request_bytes=4096,
        ).start()
        try:
            with _client(hosted) as client:
                client.send_line("x" * 20_000)
                response = client.recv()
                assert response.code == "too_large"
                assert "4096" in response.message
                # the stream resynchronized: next request works
                request = AnalyzeRequest(source=SOURCE, loop="target")
                served = client.call(request)
                assert served.canonical_text() == \
                    reference.serve(request).canonical_text()
        finally:
            hosted.stop()


class TestPipelining:
    def test_responses_come_back_in_request_order(self, hosted, reference):
        requests = [
            AnalyzeRequest(source=SOURCE, loop="target"),
            ExecuteRequest(source=SOURCE, loop="target",
                           params=PARAMS, arrays=ARRAYS),
            AnalyzeRequest(source=SOURCE.replace("+ t", "+ (t * 2)"),
                           loop="target"),
        ] * 4
        with _client(hosted) as client:
            for request in requests:
                client.send(request)
            for request in requests:
                served = client.recv()
                assert served.canonical_text() == \
                    reference.serve(request).canonical_text()

    def test_blank_lines_are_ignored(self, hosted):
        with _client(hosted) as client:
            client.send_line("")
            client.send_line("   ")
            response = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert not isinstance(response, ErrorResponse)

    def test_half_close_with_full_pipeline_loses_nothing(self, monkeypatch):
        """A client that pipelines past the queue bound, half-closes its
        write side, and keeps reading must still receive every
        response."""
        import repro.server.lineserver as lineserver_mod

        monkeypatch.setattr(lineserver_mod, "MAX_PIPELINED", 2)
        hosted = ServerThread(
            workers=1, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        try:
            host, port = hosted.address
            count = 10
            with ServerClient(host, port) as client:
                request = AnalyzeRequest(source=SOURCE, loop="target")
                for _ in range(count):
                    client.send(request)
                client.sock.shutdown(socket.SHUT_WR)
                responses = [client.recv() for _ in range(count)]
            assert len(responses) == count
            assert all(not isinstance(r, ErrorResponse) for r in responses)
        finally:
            hosted.stop()


class TestStatsVerb:
    def test_stats_counts_served_requests(self, hosted):
        with _client(hosted) as client:
            before = client.stats().stats
            client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            client.send_line("junk")
            client.recv()
            after = client.stats().stats
        assert after["requests"]["analyze"] >= before["requests"]["analyze"] + 1
        assert after["errors"]["malformed"] >= before["errors"]["malformed"] + 1
        assert after["requests"]["stats"] >= before["requests"]["stats"] + 1
        assert after["connections"] >= 1

    def test_stats_document_shape(self, hosted):
        with _client(hosted) as client:
            response = client.stats()
        assert isinstance(response, StatsResponse)
        stats = response.stats
        assert set(stats["latency"]) == {
            "count", "invalid", "mean_s", "p50_s", "p95_s", "p99_s", "max_s",
        }
        assert stats["completed"] >= 0

    def test_stats_document_carries_admission_state(self, hosted):
        """The v6 stats doc exposes the admission budget and the live
        per-worker queue depths alongside the counters."""
        with _client(hosted) as client:
            stats = client.stats().stats
        admission = stats["admission"]
        assert admission["adaptive"] is False  # static server by default
        assert admission["max_inflight"] == admission["base_max_inflight"]
        assert admission["shed_total"] >= 0
        assert "controller" not in admission
        depths = stats["queue_depths"]
        assert len(depths) == 3  # one per worker
        assert all(isinstance(d, int) and d >= 0 for d in depths)


class TestStreaming:
    """The protocol v6 ``subscribe`` verb over a real socket."""

    STREAM_KEYS = {
        "counters", "gauges", "hot_shards", "latency", "topology",
        "uptime_s",
    }

    def test_fixed_frame_stream_then_connection_reusable(self, hosted):
        with _client(hosted) as client:
            frames = list(client.subscribe(interval_s=0.05, frames=3))
            assert [f.seq for f in frames] == [0, 1, 2]
            assert [f.final for f in frames] == [False, False, True]
            for frame in frames:
                assert set(frame.stream) == self.STREAM_KEYS
                assert frame.stream["topology"] == "threads"
                assert frame.stream["hot_shards"] is None
                assert "inflight" in frame.stream["gauges"]
                assert "connections" in frame.stream["gauges"]
            # elapsed_s is the gap since the previous frame: zero on the
            # first (no predecessor), roughly the interval afterwards
            assert frames[0].elapsed_s == 0.0
            assert all(f.elapsed_s > 0.0 for f in frames[1:])
            # the same connection serves ordinary requests afterwards
            response = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert not isinstance(response, ErrorResponse)

    def test_unsubscribe_acks_with_exact_frame_count(self, hosted):
        with _client(hosted) as client:
            stream = client.subscribe(interval_s=0.05)
            seen = [next(stream), next(stream)]
            assert not seen[-1].final
            ack = client.unsubscribe()
            assert ack.frames >= len(seen)
            # stream slot released: a fresh subscribe works
            refreshed = list(client.subscribe(interval_s=0.05, frames=1))
            assert len(refreshed) == 1 and refreshed[0].final

    def test_duplicate_subscribe_is_rejected_in_order(self, hosted):
        from repro.api import (
            MetricsFrame,
            SubscribeRequest,
            UnsubscribeRequest,
            UnsubscribeResponse,
        )

        with _client(hosted) as client:
            client.send(SubscribeRequest(interval_s=0.05))
            client.send(SubscribeRequest(interval_s=0.05))  # while active
            client.send(UnsubscribeRequest())
            # responses arrive in request order: the stream's frames
            # (ending in a final one), then the duplicate's error, then
            # the ack
            response = client.recv()
            while isinstance(response, MetricsFrame) and not response.final:
                response = client.recv()
            assert isinstance(response, MetricsFrame) and response.final
            error = client.recv()
            assert isinstance(error, ErrorResponse)
            assert error.code == "bad_request"
            assert "already active" in error.message
            ack = client.recv()
            assert isinstance(ack, UnsubscribeResponse)

    def test_unsubscribe_without_stream_is_bad_request(self, hosted):
        from repro.api import UnsubscribeRequest

        with _client(hosted) as client:
            response = client.call(UnsubscribeRequest())
            assert isinstance(response, ErrorResponse)
            assert response.code == "bad_request"

    def test_late_subscriber_receives_ring_history(self):
        import time

        hosted = ServerThread(
            workers=1,
            engine_config=EngineConfig(use_disk_cache=False),
            sample_interval_s=0.05,
        ).start()
        try:
            host, port = hosted.address
            time.sleep(0.4)  # let the sampler fill the ring
            with ServerClient(host, port) as client:
                frames = list(client.subscribe(frames=1, history=4))
            first = frames[0]
            assert 1 <= len(first.history) <= 4
            for entry in first.history:
                assert {"seq", "uptime_s", "completed", "shed"} <= set(entry)
            assert [h["seq"] for h in first.history] == \
                sorted(h["seq"] for h in first.history)
        finally:
            hosted.stop()

    def test_run_top_once_renders_headless(self, hosted):
        import io

        from repro.server import run_top

        host, port = hosted.address
        out = io.StringIO()
        code = run_top(host, port, interval_s=0.05, once=True,
                       history=4, out=out)
        text = out.getvalue()
        assert code == 0
        assert f"repro-eval top -- {host}:{port}" in text
        assert "topology=threads" in text
        assert "(final)" in text  # --once requests exactly one frame
        assert "\x1b" not in text  # headless: no ANSI control codes

    def test_run_top_reports_connection_failure(self):
        import io

        from repro.server import run_top

        # nothing listens on this port (we never started a server there)
        assert run_top("127.0.0.1", 1, once=True, out=io.StringIO()) == 1

    def test_adaptive_server_reports_controller_in_stats(self):
        hosted = ServerThread(
            workers=1,
            engine_config=EngineConfig(use_disk_cache=False),
            max_inflight=8,
            adaptive_admission=True,
        ).start()
        try:
            host, port = hosted.address
            with ServerClient(host, port) as client:
                admission = client.stats().stats["admission"]
            assert admission["adaptive"] is True
            assert admission["base_max_inflight"] == 8
            controller = admission["controller"]
            assert controller["budget"] == admission["max_inflight"]
            assert controller["floor"] >= 1
            assert controller["cap"] == 32
        finally:
            hosted.stop()


class TestOverload:
    def test_burst_beyond_budget_sheds_typed_errors(self):
        hosted = ServerThread(
            workers=1,
            engine_config=EngineConfig(use_disk_cache=False),
            queue_depth=1,
            max_inflight=1,
        ).start()
        try:
            count = 20
            with _client(hosted) as client:
                request = ExecuteRequest(
                    source=SOURCE, loop="target", params=PARAMS, arrays=ARRAYS
                )
                for _ in range(count):
                    client.send(request)
                responses = [client.recv() for _ in range(count)]
            ok = [r for r in responses if not isinstance(r, ErrorResponse)]
            shed = [r for r in responses if isinstance(r, ErrorResponse)]
            assert len(ok) + len(shed) == count
            assert ok, "at least one request must be served"
            assert shed, "a 1-deep server must shed a 20-request burst"
            assert all(r.code == "overloaded" and r.retryable for r in shed)
            snapshot = hosted.server.metrics.snapshot()
            assert snapshot["shed"] == len(shed)
        finally:
            hosted.stop()


class TestGracefulShutdown:
    def test_stop_completes_and_port_closes(self):
        hosted = ServerThread(
            workers=2, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        host, port = hosted.address
        with ServerClient(host, port) as client:
            response = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert not isinstance(response, ErrorResponse)
        hosted.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)

    def test_stop_with_idle_open_connection(self):
        hosted = ServerThread(
            workers=1, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        host, port = hosted.address
        idle = ServerClient(host, port)
        try:
            idle.call(AnalyzeRequest(source=SOURCE, loop="target"))
            hosted.stop()  # must not hang on the idle connection
        finally:
            idle.close()

    def test_double_stop_is_idempotent(self):
        hosted = ServerThread(
            workers=1, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        hosted.stop()
        hosted.stop()


@pytest.mark.slow
class TestSoak:
    def test_1000_requests_16_connections_byte_identical(self):
        """The acceptance soak: >= 1000 mixed analyze/execute requests
        over >= 16 concurrent connections, every response byte-identical
        to in-process Engine.serve, zero transport failures."""
        hosted = ServerThread(
            workers=4, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        host, port = hosted.address
        reference = Engine(EngineConfig(use_disk_cache=False))
        mix = build_mix(seed=3, programs=10)
        connections = 16
        per_connection = 63  # 16 * 63 = 1008 requests
        failures = []

        def drive(worker_id):
            rng = random.Random(1000 + worker_id)
            try:
                with ServerClient(host, port, timeout=300) as client:
                    for i in range(per_connection):
                        request = make_request(rng, mix, analyze_fraction=0.8)
                        served = client.call(request)
                        expected = reference.serve(request)
                        if served.canonical_text() != expected.canonical_text():
                            failures.append(
                                f"conn {worker_id} req {i}: mismatch for "
                                f"{type(request).__name__}"
                            )
            except Exception as exc:  # noqa: BLE001 -- any failure fails the soak
                failures.append(f"conn {worker_id}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(connections)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = hosted.server.metrics.snapshot()
        hosted.stop()
        assert not failures, failures[:5]
        assert snapshot["completed"] == connections * per_connection
        assert snapshot["shed"] == 0
        assert snapshot["inflight"] == 0

    def test_run_load_closed_and_open_loop(self):
        hosted = ServerThread(
            workers=2, engine_config=EngineConfig(use_disk_cache=False)
        ).start()
        host, port = hosted.address
        try:
            closed = run_load(host, port, clients=6, requests=120, seed=5)
            assert closed["completed"] == 120
            assert closed["errors"] == 0
            assert not closed["failures"]
            assert closed["latency"]["p50_s"] <= closed["latency"]["p99_s"]
            opened = run_load(
                host, port, clients=4, requests=80, mode="open",
                rate=400, seed=6,
            )
            assert opened["completed"] == 80
            assert not opened["failures"]
        finally:
            hosted.stop()
