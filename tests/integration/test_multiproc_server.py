"""End-to-end multi-process serving: the front tier over real backend
processes.

The load-bearing contracts, in test order: byte transparency (a client
cannot tell the fleet from one server), typed error paths answered at
the front without burning a backend round trip, the topology-aware
stats document, hot-shard replica fan-out, and the chaos bar -- a
backend SIGKILLed under load never drops a connection or emits a
malformed response, only (at worst) a typed *retryable* ``overloaded``
error, and the supervisor brings the fleet back to full strength.
"""

import json
import random
import signal
import threading
import time

import pytest

from repro.api import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    Engine,
    EngineConfig,
    ErrorResponse,
    ExecuteRequest,
    StatsResponse,
    wire_json,
)
from repro.server import (
    FrontTier,
    ServerClient,
    ServerThread,
    build_mix,
    make_request,
)

SOURCE = """
program multiproc_test
param N
array A(200), B(200), IDX(200)

main
  do i = 1, N @ target
    t = B[i] + 1
    A[IDX[i]] = A[IDX[i]] + t
  end
end
"""

PARAMS = {"N": 20}
ARRAYS = {"IDX": [(i % 7) + 1 for i in range(200)], "B": [2] * 200}


@pytest.fixture(scope="module")
def hosted():
    """A front tier over two real backend processes (no disk cache);
    hot_rps is set low so the fan-out test can trip it quickly."""
    front = FrontTier(
        backends=2, replicas=2, backend_workers=1,
        use_disk_cache=False, hot_rps=5.0,
    )
    thread = ServerThread(server=front).start()
    yield thread, front
    thread.stop()


@pytest.fixture(scope="module")
def direct():
    """A plain single-process server, the byte-transparency reference."""
    thread = ServerThread(
        workers=1, engine_config=EngineConfig(use_disk_cache=False)
    ).start()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def reference():
    return Engine(EngineConfig(use_disk_cache=False))


def _client(hosted_or_thread):
    thread = hosted_or_thread[0] if isinstance(hosted_or_thread, tuple) else hosted_or_thread
    host, port = thread.address
    return ServerClient(host, port)


def _stats(hosted):
    with _client(hosted) as client:
        response = client.stats()
    assert isinstance(response, StatsResponse)
    return response.stats


def _wait(predicate, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestByteTransparency:
    def test_analyze_matches_in_process(self, hosted, reference):
        request = AnalyzeRequest(source=SOURCE, loop="target")
        with _client(hosted) as client:
            served = client.call(request)
        assert served.canonical_text() == reference.serve(request).canonical_text()

    def test_execute_matches_in_process(self, hosted, reference):
        request = ExecuteRequest(
            source=SOURCE, loop="target", params=PARAMS, arrays=ARRAYS
        )
        with _client(hosted) as client:
            served = client.call(request)
        assert served.canonical_text() == reference.serve(request).canonical_text()

    def test_wire_bytes_match_single_process_server(self, hosted, direct):
        """Literal byte equivalence: the same request lines produce the
        same response lines whether one server or a fleet answers."""
        mix = build_mix(seed=23, programs=5)
        rng = random.Random(23)
        lines = [
            wire_json(make_request(rng, mix, analyze_fraction=0.7).to_json())
            for _ in range(16)
        ]
        with _client(hosted) as fleet, _client(direct) as single:
            for line in lines:
                fleet.send_line(line)
                single.send_line(line)
                assert fleet.recv_raw() == single.recv_raw()


class TestErrorPaths:
    def test_malformed_json(self, hosted):
        with _client(hosted) as client:
            client.send_line("{not json")
            response = client.recv()
            assert isinstance(response, ErrorResponse)
            assert response.code == "malformed"
            assert response.retryable is False

    def test_wrong_protocol_version(self, hosted):
        with _client(hosted) as client:
            client.send_line(wire_json({
                "kind": "analyze", "version": PROTOCOL_VERSION + 1,
                "source": SOURCE, "loop": "target",
            }))
            response = client.recv()
            assert response.code == "unsupported_version"
            assert str(PROTOCOL_VERSION) in response.message

    def test_unknown_verb(self, hosted):
        with _client(hosted) as client:
            client.send_line(wire_json({
                "kind": "reticulate", "version": PROTOCOL_VERSION,
            }))
            assert client.recv().code == "unknown_verb"

    def test_bad_request_bytes_match_single_process(self, hosted, direct):
        """The front validates before forwarding, and its typed
        bad_request is byte-identical to the single server's."""
        line = wire_json({
            "kind": "analyze", "version": PROTOCOL_VERSION,
            "source": SOURCE,  # missing the required loop field
        })
        with _client(hosted) as fleet, _client(direct) as single:
            fleet.send_line(line)
            single.send_line(line)
            fleet_doc, single_doc = fleet.recv_raw(), single.recv_raw()
        assert fleet_doc["code"] == "bad_request"
        assert fleet_doc == single_doc

    def test_connection_survives_errors(self, hosted):
        with _client(hosted) as client:
            client.send_line("garbage")
            assert client.recv().code == "malformed"
            served = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert served.to_json()["kind"] == "analyze"


class TestTopologyStats:
    def test_stats_document_shape(self, hosted):
        stats = _stats(hosted)
        assert set(stats) == {"backends", "front", "topology"}
        topology = stats["topology"]
        assert topology["kind"] == "multiproc"
        assert topology["backends"] == 2
        assert topology["replicas"] == 2
        assert topology["live"] == 2
        assert len(stats["backends"]) == 2
        for backend in stats["backends"]:
            assert backend["state"] == "up"
            assert backend["pid"] is not None
            # each live backend contributed its own engine-level stats
            assert isinstance(backend["stats"], dict)
            assert "requests" in backend["stats"]
        assert "hot_shards" in stats["front"]
        assert stats["front"]["requests"]["stats"] >= 1
        # v6: live per-backend in-flight levels ride along
        inflight = stats["front"]["backend_inflight"]
        assert len(inflight) == 2
        assert all(isinstance(n, int) and n >= 0 for n in inflight)


class TestStreaming:
    def test_subscribe_streams_multiproc_frames(self, hosted):
        """The same v6 subscribe verb works against the front tier; its
        frames carry the fleet-shaped gauges and hot-shard snapshot."""
        with _client(hosted) as client:
            frames = list(client.subscribe(interval_s=0.05, frames=2))
            assert [f.seq for f in frames] == [0, 1]
            assert frames[-1].final
            for frame in frames:
                assert frame.stream["topology"] == "multiproc"
                hot = frame.stream["hot_shards"]
                assert isinstance(hot, dict) and "hot_digests" in hot
                gauges = frame.stream["gauges"]
                assert len(gauges["backend_inflight"]) == 2
                assert gauges["backends_live"] == 2
            # the connection serves ordinary requests after the stream
            served = client.call(AnalyzeRequest(source=SOURCE, loop="target"))
            assert served.to_json()["kind"] == "analyze"

    def test_unsubscribe_acks_on_front_tier(self, hosted):
        with _client(hosted) as client:
            stream = client.subscribe(interval_s=0.05)
            first = next(stream)
            assert first.seq == 0 and not first.final
            ack = client.unsubscribe()
            assert ack.frames >= 1


class TestHotShardFanOut:
    def test_sustained_hot_digest_fans_to_replicas(self, hosted):
        """Hammering one program past hot_rps flips the tracker and the
        analyzes start racing the replica set (fanouts > 0), without
        ever changing the answer."""
        thread, front = hosted
        request = AnalyzeRequest(source=SOURCE, loop="target")
        texts = set()
        with _client(hosted) as client:
            first = client.call(request)
            texts.add(first.canonical_text())
            for _ in range(40):
                texts.add(client.call(request).canonical_text())
        assert len(texts) == 1  # replicas agree byte-for-byte
        stats = _stats(hosted)
        assert stats["front"]["fanouts"] > 0
        assert stats["front"]["hot_shards"]["hot_digests"] >= 0


class TestChaos:
    def test_sigkill_under_load_yields_no_protocol_violations(self, hosted):
        """The chaos bar: SIGKILL a backend mid-load; every in-flight
        and subsequent request still gets exactly one well-formed
        response (success or typed retryable overloaded), no connection
        is dropped, and the supervisor restores the fleet."""
        thread, front = hosted
        mix = build_mix(seed=31, programs=8)
        violations = []
        responses = []
        lock = threading.Lock()

        def worker(seed):
            rng = random.Random(seed)
            try:
                with _client(hosted) as client:
                    for _ in range(25):
                        request = make_request(rng, mix, analyze_fraction=0.8)
                        doc = client.call(request).to_json()
                        with lock:
                            responses.append(doc)
            except Exception as exc:  # noqa: BLE001 -- any transport
                # failure is exactly the violation under test
                with lock:
                    violations.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(100 + i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        time.sleep(0.3)  # let the load ramp, then pull the trigger
        killed_pid = front.supervisor.kill(0, signal.SIGKILL)
        assert killed_pid is not None
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)

        assert violations == [], f"dropped/failed connections: {violations}"
        assert len(responses) == 6 * 25
        for doc in responses:
            assert doc["kind"] in ("analyze", "execute", "error")
            if doc["kind"] == "error":
                # the only acceptable error is the typed retryable one
                assert doc["code"] == "overloaded"
                assert doc["retryable"] is True

    def test_supervisor_restores_fleet_after_kill(self, hosted):
        assert _wait(
            lambda: _stats(hosted)["topology"]["live"] == 2, timeout_s=60
        )
        stats = _stats(hosted)
        restarts = [b["restarts"] for b in stats["backends"]]
        assert restarts == [1, 0]
        assert stats["front"]["backend_died"] >= 1

    def test_requests_flow_after_recovery(self, hosted, reference):
        request = AnalyzeRequest(source=SOURCE, loop="target")
        with _client(hosted) as client:
            served = client.call(request)
        assert served.canonical_text() == reference.serve(request).canonical_text()
