"""End-to-end tracing across the process boundary: the front tier
stitches each backend's spans under its own backend-RPC span, so one
request reads as one tree even though two interpreters served it.

The chaos bar from the issue: a request whose backend is SIGKILLed
mid-flight must still yield a *kept* trace containing the
retryable-error backend_rpc span -- the trace survives the kill even
though the backend's own span store died with it.
"""

import signal
import threading
import time

import pytest

from repro.api import ExecuteRequest, TraceResponse
from repro.server import FrontTier, ServerClient, ServerThread
from repro.server.tracing import mint_trace_id

SOURCE = """
program multiproc_tracing
param N
array A(200), B(200), IDX(200)

main
  do i = 1, N @ target
    t = B[i] + 1
    A[IDX[i]] = A[IDX[i]] + t
  end
end
"""

# structurally distinct from SOURCE so the backend pays the factor
# cascade (its memo is keyed on the USR, not the source digest)
PHASES_SOURCE = """
program multiproc_phases
param N
array C(300), D(300), J(300)

main
  do i = 1, N @ target
    u = D[i + 2] + 3
    C[J[i] + 1] = C[J[i] + 1] + u
  end
end
"""

PARAMS = {"N": 20}
ARRAYS = {"IDX": [(i % 7) + 1 for i in range(200)], "B": [2] * 200}


@pytest.fixture(scope="module")
def hosted():
    front = FrontTier(
        backends=2, replicas=2, backend_workers=1, use_disk_cache=False,
    )
    thread = ServerThread(server=front).start()
    yield thread, front
    thread.stop()


def _client(hosted):
    thread = hosted[0]
    host, port = thread.address
    return ServerClient(host, port)


def _traced_execute(source=SOURCE):
    trace_id = mint_trace_id()
    return trace_id, ExecuteRequest(
        source=source, loop="target", params=PARAMS, arrays=ARRAYS,
        trace={"trace_id": trace_id, "sampled": True},
    )


def _fetch(client, trace_id):
    response = client.trace(trace_id=trace_id)
    assert isinstance(response, TraceResponse)
    assert len(response.traces) == 1, f"trace {trace_id} not kept"
    return response.traces[0]


class TestStitchedTrees:
    def test_front_and_backend_spans_form_one_tree(self, hosted):
        trace_id, request = _traced_execute()
        with _client(hosted) as client:
            assert client.call(request).to_json()["kind"] == "execute"
            doc = _fetch(client, trace_id)

        spans = doc["spans"]
        by_id = {span["span_id"]: span for span in spans}
        front_root = by_id[doc["root_span_id"]]
        assert front_root["attrs"]["tier"] == "front"
        assert front_root["attrs"]["verb"] == "execute"

        names = [span["name"] for span in spans]
        for expected in ("request", "route", "backend_rpc",
                         "queue_wait", "compile", "execute"):
            assert expected in names, f"missing {expected} in {names}"

        # the backend's own root hangs under the front's RPC span
        rpc_spans = [s for s in spans if s["name"] == "backend_rpc"]
        backend_roots = [
            s for s in spans
            if s["name"] == "request" and s["attrs"].get("tier") == "threads"
        ]
        assert backend_roots, "backend subtree was not stitched"
        rpc_ids = {s["span_id"] for s in rpc_spans}
        for backend_root in backend_roots:
            assert backend_root["parent_span_id"] in rpc_ids

        # every span resolves into the single tree, and wall-clock
        # timestamps line up across the two processes (same host; allow
        # a little scheduling slack)
        slack = 0.05
        for span in spans:
            if span["span_id"] == doc["root_span_id"]:
                continue
            assert span["parent_span_id"] in by_id
            assert span["start_s"] >= front_root["start_s"] - slack
            assert span["end_s"] <= front_root["end_s"] + slack
            assert span["end_s"] >= span["start_s"]

        # compile + execute happen inside the backend RPC window
        rpc = rpc_spans[0]
        backend_work = [s for s in spans if s["name"] in ("compile", "execute")]
        for span in backend_work:
            assert span["start_s"] >= rpc["start_s"] - slack
            assert span["end_s"] <= rpc["end_s"] + slack

        # direct children of the front root sum to no more than it
        children = [s for s in spans
                    if s["parent_span_id"] == doc["root_span_id"]]
        assert sum(s["duration_s"] for s in children) \
            <= front_root["duration_s"] + slack

    def test_phase_attribution_crosses_the_process_boundary(self, hosted):
        trace_id, request = _traced_execute(source=PHASES_SOURCE)
        with _client(hosted) as client:
            client.call(request)
            doc = _fetch(client, trace_id)
        compile_spans = [s for s in doc["spans"] if s["name"] == "compile"]
        assert compile_spans, "backend compile span was not stitched"
        phases = compile_spans[0]["attrs"].get("phases", {})
        assert {"summarize", "usr_build", "cascade"} <= set(phases)
        execute_spans = [s for s in doc["spans"] if s["name"] == "execute"]
        assert execute_spans and "backend_used" in execute_spans[0]["attrs"]

    def test_route_span_names_the_chosen_backend(self, hosted):
        trace_id, request = _traced_execute()
        with _client(hosted) as client:
            client.call(request)
            doc = _fetch(client, trace_id)
        route_spans = [s for s in doc["spans"] if s["name"] == "route"]
        assert route_spans
        attrs = route_spans[0]["attrs"]
        assert attrs["primary"] in (0, 1)
        assert "target" in attrs
        rpc = [s for s in doc["spans"] if s["name"] == "backend_rpc"][0]
        assert rpc["attrs"]["backend"] in (0, 1)

    def test_recent_listing_on_the_front_tier(self, hosted):
        with _client(hosted) as client:
            response = client.trace(limit=50)
        assert response.traces, "forced traces must be kept on the front"
        assert response.store["kept"] >= 1
        for doc in response.traces:
            root = [s for s in doc["spans"]
                    if s["span_id"] == doc["root_span_id"]]
            assert root and root[0]["attrs"]["tier"] == "front"


class TestMultiprocStats:
    def test_backend_stats_carry_analysis_cache_and_trace_store(self, hosted):
        with _client(hosted) as client:
            stats = client.stats().stats
        for backend in stats["backends"]:
            backend_stats = backend["stats"]
            assert "analysis_cache" in backend_stats
            for counts in backend_stats["analysis_cache"]:
                assert set(counts) == {"hits", "misses"}
            assert "trace_store" in backend_stats


class TestChaosTracing:
    def test_sigkilled_backend_yields_retryable_error_span(self, hosted):
        """Hammer the fleet with force-sampled requests, SIGKILL one
        backend mid-flight, and find the in-flight trace that recorded
        the dead backend: a backend_rpc span with status=error,
        error=backend_died, retryable=True -- kept, not dropped."""
        thread, front = hosted
        deadline = time.monotonic() + 120.0
        found = None
        attempt = 0
        while found is None and time.monotonic() < deadline:
            attempt += 1
            assert front.supervisor.wait_up(timeout_s=60.0), \
                "fleet never (re)converged"
            trace_ids = []
            lock = threading.Lock()

            def worker(worker_index):
                try:
                    with _client(hosted) as client:
                        for _ in range(12):
                            trace_id, request = _traced_execute()
                            with lock:
                                trace_ids.append(trace_id)
                            client.call(request)
                except Exception:  # noqa: BLE001 -- chaos collateral;
                    pass           # the protocol bar has its own test

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05 * attempt)  # let load build, then fire
            front.supervisor.kill(0, signal.SIGKILL)
            for t in threads:
                t.join(timeout=120)

            with _client(hosted) as client:
                for trace_id in trace_ids:
                    response = client.trace(trace_id=trace_id)
                    for doc in response.traces:
                        for span in doc["spans"]:
                            if span["attrs"].get("error") == "backend_died":
                                found = (doc, span)
                                break

        assert found is not None, \
            "no kept trace recorded the SIGKILLed backend"
        doc, span = found
        assert span["name"] == "backend_rpc"
        assert span["status"] == "error"
        assert span["attrs"]["retryable"] is True
        assert span["attrs"]["backend"] == 0
        # the trace is a well-formed tree rooted at the front tier
        by_id = {s["span_id"]: s for s in doc["spans"]}
        assert span["parent_span_id"] == doc["root_span_id"]
        assert doc["root_span_id"] in by_id

    def test_fleet_recovers_and_tracing_continues(self, hosted):
        thread, front = hosted
        assert front.supervisor.wait_up(timeout_s=60.0)
        trace_id, request = _traced_execute()
        with _client(hosted) as client:
            assert client.call(request).to_json()["kind"] == "execute"
            doc = _fetch(client, trace_id)
        assert doc["status"] == "ok"
        assert any(s["name"] == "backend_rpc" and s["status"] == "ok"
                   for s in doc["spans"])
