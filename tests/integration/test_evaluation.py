"""End-to-end tests for the evaluation harness and its CLI."""

import pytest

from repro.evaluation import (
    format_figure,
    format_table,
    generate_figure,
    generate_table,
)
from repro.evaluation.cli import main
from repro.evaluation.model import measure_benchmark
from repro.workloads import get_benchmark


class TestMeasurementModel:
    def test_hybrid_vs_baseline_on_runtime_bench(self):
        spec = get_benchmark("wupwise")
        hybrid = measure_benchmark(spec, system="hybrid")
        base = measure_benchmark(spec, system="baseline")
        assert hybrid.norm_time(8) < base.norm_time(8)
        # The baseline runs everything sequentially here.
        assert base.norm_time(8) == pytest.approx(1.0, abs=0.05)

    def test_norm_time_bounded_by_amdahl(self):
        spec = get_benchmark("mgrid")
        m = measure_benchmark(spec, system="hybrid")
        # Cannot beat perfect speedup of the covered fraction.
        assert m.norm_time(8) >= (1.0 - spec.sc)

    def test_speedup_inverse_of_norm(self):
        spec = get_benchmark("swim")
        m = measure_benchmark(spec, system="hybrid")
        assert m.speedup(4) == pytest.approx(1.0 / m.norm_time(4))

    def test_bad_system_rejected(self):
        with pytest.raises(ValueError):
            measure_benchmark(get_benchmark("swim"), system="magic")


class TestFormatting:
    def test_table_format_contains_rows(self):
        report = generate_table("spec92")
        text = format_table(report)
        assert "matrix300" in text and "PAPER" in text and "RTov" in text

    def test_figure_format(self):
        series = generate_figure("fig11")
        text = format_figure(series)
        assert "nasa7" in text and "baseline" in text

    def test_scalability_format(self):
        series = generate_figure("fig13")
        text = format_figure(series)
        assert "16p" in text and "paper@16" in text


class TestCli:
    def test_single_artifact(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "tomcatv" in out

    def test_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "spec92" in out

    def test_bad_artifact(self):
        with pytest.raises(SystemExit):
            main(["table9"])


class TestAnalyzeCli:
    SOURCE = (
        "program cli_stdin\n"
        "param N\n"
        "array A(50)\n"
        "\n"
        "main\n"
        "  do i = 1, N @ L1\n"
        "    A[i] = A[i] + i\n"
        "  end\n"
        "end\n"
    )

    def test_stdin_dash_reads_source(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.SOURCE))
        assert main(["analyze", "-", "--loop", "L1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "classification" in out and "L1" in out

    def test_stdin_json_document(self, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO(self.SOURCE))
        assert main(["analyze", "-", "--loop", "L1", "--no-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analyze" and payload["loop"] == "L1"

    def test_file_and_stdin_agree(self, capsys, monkeypatch, tmp_path):
        import io

        path = tmp_path / "prog.loop"
        path.write_text(self.SOURCE)
        assert main(["analyze", str(path), "--loop", "L1", "--no-cache",
                     "--json"]) == 0
        from_file = capsys.readouterr().out
        monkeypatch.setattr("sys.stdin", io.StringIO(self.SOURCE))
        assert main(["analyze", "-", "--loop", "L1", "--no-cache",
                     "--json"]) == 0
        assert capsys.readouterr().out == from_file


class TestServeLoadgenCli:
    def test_loadgen_against_hosted_server(self, capsys):
        from repro.api import EngineConfig
        from repro.server import ServerThread

        hosted = ServerThread(
            workers=2,
            engine_config=EngineConfig(use_disk_cache=False),
        ).start()
        host, port = hosted.address
        try:
            assert main([
                "loadgen", "--host", host, "--port", str(port),
                "--clients", "4", "--requests", "40",
            ]) == 0
            out = capsys.readouterr().out
            assert "40/40 ok" in out and "0 error(s)" in out
        finally:
            hosted.stop()

    def test_loadgen_json_summary(self, capsys):
        import json

        from repro.api import EngineConfig
        from repro.server import ServerThread

        hosted = ServerThread(
            workers=1,
            engine_config=EngineConfig(use_disk_cache=False),
        ).start()
        host, port = hosted.address
        try:
            assert main([
                "loadgen", "--host", host, "--port", str(port),
                "--clients", "2", "--requests", "20", "--json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["completed"] == 20 and payload["errors"] == 0
        finally:
            hosted.stop()

    def test_loadgen_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "--clients", "0"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--mode", "open"])  # open loop needs --rate

    def test_loadgen_bench_rejects_external_server_flags(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "--bench", "--port", "7070"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--bench", "--host", "example.com"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--bench", "--mode", "open", "--rate", "50"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--bench", "--clients", "64"])

    def test_loadgen_against_non_protocol_endpoint_reports_failure(self, capsys):
        import socket
        import threading

        # a TCP sink that answers garbage: loadgen must report transport
        # failures and exit non-zero, never crash
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(4)
        port = sink.getsockname()[1]
        stop = threading.Event()

        def serve_garbage():
            sink.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = sink.accept()
                except socket.timeout:
                    continue
                with conn:
                    try:
                        conn.recv(4096)
                        conn.sendall(b"HTTP/1.1 400 Bad Request\r\n\r\n")
                    except OSError:
                        pass

        thread = threading.Thread(target=serve_garbage, daemon=True)
        thread.start()
        try:
            assert main([
                "loadgen", "--port", str(port), "--clients", "2",
                "--requests", "4",
            ]) == 1
            out = capsys.readouterr().out
            assert "transport failure" in out
        finally:
            stop.set()
            thread.join()
            sink.close()

    def test_serve_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            main(["serve", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--max-inflight", "0"])
