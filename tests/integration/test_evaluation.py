"""End-to-end tests for the evaluation harness and its CLI."""

import pytest

from repro.evaluation import (
    format_figure,
    format_table,
    generate_figure,
    generate_table,
)
from repro.evaluation.cli import main
from repro.evaluation.model import measure_benchmark
from repro.workloads import get_benchmark


class TestMeasurementModel:
    def test_hybrid_vs_baseline_on_runtime_bench(self):
        spec = get_benchmark("wupwise")
        hybrid = measure_benchmark(spec, system="hybrid")
        base = measure_benchmark(spec, system="baseline")
        assert hybrid.norm_time(8) < base.norm_time(8)
        # The baseline runs everything sequentially here.
        assert base.norm_time(8) == pytest.approx(1.0, abs=0.05)

    def test_norm_time_bounded_by_amdahl(self):
        spec = get_benchmark("mgrid")
        m = measure_benchmark(spec, system="hybrid")
        # Cannot beat perfect speedup of the covered fraction.
        assert m.norm_time(8) >= (1.0 - spec.sc)

    def test_speedup_inverse_of_norm(self):
        spec = get_benchmark("swim")
        m = measure_benchmark(spec, system="hybrid")
        assert m.speedup(4) == pytest.approx(1.0 / m.norm_time(4))

    def test_bad_system_rejected(self):
        with pytest.raises(ValueError):
            measure_benchmark(get_benchmark("swim"), system="magic")


class TestFormatting:
    def test_table_format_contains_rows(self):
        report = generate_table("spec92")
        text = format_table(report)
        assert "matrix300" in text and "PAPER" in text and "RTov" in text

    def test_figure_format(self):
        series = generate_figure("fig11")
        text = format_figure(series)
        assert "nasa7" in text and "baseline" in text

    def test_scalability_format(self):
        series = generate_figure("fig13")
        text = format_figure(series)
        assert "16p" in text and "paper@16" in text


class TestCli:
    def test_single_artifact(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "tomcatv" in out

    def test_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "spec92" in out

    def test_bad_artifact(self):
        with pytest.raises(SystemExit):
            main(["table9"])
