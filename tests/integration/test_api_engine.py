"""Engine cache semantics and concurrency.

The compile memo must hit on identical source and miss on any edit; the
disk cache must serve across engine instances, and a CACHE_VERSION bump
must orphan every persisted response; concurrent ``engine.map`` fan-out
must produce exactly the single-threaded results.
"""

import json

import pytest

import repro.api.cache as api_cache
from repro.api import (
    AnalyzeRequest,
    Engine,
    EngineConfig,
    ExecuteRequest,
    default_engine,
)
from repro.core import analyze_loop
from repro.evaluation import cli
from repro.fuzz import generate_case, run_fuzz

SOURCE = """
program engine_test
param N
array A(100), B(100)

main
  do i = 1, N @ copy
    A[i] = B[i] + 1
  end
end
"""

EDITED = SOURCE.replace("B[i] + 1", "B[i] + 2")


def test_recompile_same_source_hits_memo():
    engine = Engine(EngineConfig(use_disk_cache=False))
    compiled = engine.compile(SOURCE)
    assert engine.compile(SOURCE) is compiled
    # plans memoize on the shared handle too
    assert compiled.plan("copy") is engine.compile(SOURCE).plan("copy")


def test_source_edit_invalidates_compile_memo():
    engine = Engine(EngineConfig(use_disk_cache=False))
    a = engine.compile(SOURCE)
    b = engine.compile(EDITED)
    assert a is not b
    assert a.digest != b.digest


def test_program_object_compile_is_identity_keyed():
    engine = Engine(EngineConfig(use_disk_cache=False))
    program = engine.parse(SOURCE)
    by_obj = engine.compile(program)
    assert by_obj.program is program
    assert engine.compile(program) is by_obj
    assert by_obj.source is None  # and therefore never disk-cached
    # a process-specific id must never leak into wire documents
    assert by_obj.digest == ""
    assert by_obj.analyze("copy").digest == ""


def test_compile_memo_evicts_oldest_at_capacity():
    engine = Engine(EngineConfig(use_disk_cache=False, compile_cache_size=4))
    handles = [
        engine.compile(SOURCE.replace("+ 1", f"+ {n}")) for n in range(1, 8)
    ]
    assert len(engine._compile_memo.data) <= 4
    # the newest source still hits; the oldest was evicted (fresh handle)
    newest = SOURCE.replace("+ 1", "+ 7")
    assert engine.compile(newest) is handles[-1]
    assert engine.compile(SOURCE.replace("+ 1", "+ 1")) is not handles[0]


def test_disk_cache_serves_across_engines(tmp_path):
    config = EngineConfig(cache_dir=str(tmp_path))
    first = Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    assert not first.cached
    second = Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    assert second.cached
    assert second.canonical_text() == first.canonical_text()


def test_source_edit_invalidates_disk_cache(tmp_path):
    config = EngineConfig(cache_dir=str(tmp_path))
    Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    edited = Engine(config).analyze(AnalyzeRequest(source=EDITED, loop="copy"))
    assert not edited.cached


def test_cache_version_bump_invalidates_disk_cache(tmp_path, monkeypatch):
    config = EngineConfig(cache_dir=str(tmp_path))
    Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    monkeypatch.setattr(api_cache, "CACHE_VERSION", api_cache.CACHE_VERSION + 1)
    bumped = Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    assert not bumped.cached


def test_analyzer_options_partition_the_disk_cache(tmp_path):
    config = EngineConfig(cache_dir=str(tmp_path))
    Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    other_knobs = Engine(config).analyze(
        AnalyzeRequest(
            source=SOURCE, loop="copy", options={"use_monotonicity": False}
        )
    )
    assert not other_knobs.cached


def test_unknown_analyzer_option_is_rejected():
    engine = Engine(EngineConfig(use_disk_cache=False))
    with pytest.raises(TypeError, match="unknown analyzer option"):
        engine.compile(SOURCE).plan("copy", not_a_knob=1)


def test_map_is_deterministic_under_concurrency():
    """A fixed-seed mini-fuzz batch through two threads must yield the
    byte-identical responses of a serial run, in order."""
    engine = Engine(EngineConfig(use_disk_cache=False))
    requests = []
    for seed in range(6):
        case = generate_case(seed)
        requests.append(AnalyzeRequest(source=case.source, loop=case.label))
        requests.append(
            ExecuteRequest(
                source=case.source,
                loop=case.label,
                params=case.params,
                arrays=case.arrays,
                exact_strategy=case.exact_strategy,
            )
        )
    serial = [engine.serve(r) for r in requests]
    threaded = engine.map(requests, jobs=2)
    assert [r.canonical_text() for r in threaded] == [
        r.canonical_text() for r in serial
    ]


def test_fuzz_verdicts_race_free_across_thread_counts():
    one = run_fuzz(seeds=6, jobs=1, cache=None)
    two = run_fuzz(seeds=6, jobs=2, cache=None)
    key = lambda r: (r.seed, r.outcome, r.classification, r.parallel)
    assert [key(r) for r in one.results] == [key(r) for r in two.results]
    assert one.ok and two.ok


def test_analyze_loop_shim_delegates_to_default_engine():
    program = default_engine().parse(SOURCE)
    plan = analyze_loop(program, "copy")
    # the shim shares the default engine's plan memo
    assert analyze_loop(program, "copy") is plan
    assert plan is default_engine().compile(program).plan("copy")


def test_cli_analyze_emits_stable_json(tmp_path, capsys):
    path = tmp_path / "prog.loop"
    path.write_text(SOURCE)
    rc = cli.main(
        ["analyze", str(path), "--loop", "copy", "--json", "--no-cache"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "analyze"
    assert payload["loop"] == "copy"
    assert payload["classification"] == "STATIC-PAR"


def test_cli_analyze_human_output(tmp_path, capsys):
    path = tmp_path / "prog.loop"
    path.write_text(SOURCE)
    rc = cli.main(["analyze", str(path), "--loop", "copy", "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "classification: STATIC-PAR" in out


def test_cli_analyze_unknown_loop_errors(tmp_path, capsys):
    path = tmp_path / "prog.loop"
    path.write_text(SOURCE)
    with pytest.raises(SystemExit) as exc:
        cli.main(["analyze", str(path), "--loop", "nope", "--no-cache"])
    assert exc.value.code == 2


# -- tiering and the analysis-cache key schema --------------------------------


def test_tiering_knob_partitions_the_disk_cache(tmp_path):
    """The v4 cache-key fix: two requests differing only in the
    ``tiering`` knob must never serve each other's entries."""
    config = EngineConfig(cache_dir=str(tmp_path))
    Engine(config).analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    off = Engine(config).analyze(
        AnalyzeRequest(source=SOURCE, loop="copy", options={"tiering": False})
    )
    assert not off.cached
    again_off = Engine(config).analyze(
        AnalyzeRequest(source=SOURCE, loop="copy", options={"tiering": False})
    )
    assert again_off.cached


def test_cache_key_schema_is_pinned(tmp_path):
    """Pin what the key digests: cache + protocol versions, digest,
    loop label and the sorted knob text (which must name 'tiering')."""
    from repro.api.engine import AnalysisCache, _knob_text
    from repro.api.protocol import PROTOCOL_VERSION

    assert api_cache.CACHE_VERSION == 4
    knob_text = _knob_text(EngineConfig().analyzer_knobs())
    assert "tiering=True" in knob_text
    cache = AnalysisCache(str(tmp_path))
    key = cache.key("d1g3st", "copy", knob_text)
    assert key == "api-analyze-d1g3st-" + cache.digest(
        f"v{api_cache.CACHE_VERSION}\0p{PROTOCOL_VERSION}\0"
        f"d1g3st\0copy\0{knob_text}"
    )
    # flipping only the tiering knob must move the key
    flipped = dict(EngineConfig().analyzer_knobs(), tiering=False)
    assert cache.key("d1g3st", "copy", _knob_text(flipped)) != key


def test_tiering_off_is_wire_visible_and_equivalent():
    engine = Engine(EngineConfig(use_disk_cache=False))
    tiered = engine.analyze(AnalyzeRequest(source=SOURCE, loop="copy"))
    baseline = engine.analyze(
        AnalyzeRequest(source=SOURCE, loop="copy", options={"tiering": False})
    )
    assert baseline.tier_used == "tier1"
    assert baseline.screening == "off"
    assert tiered.screening in ("resolved", "escalated")
    a, b = tiered.to_json(), baseline.to_json()
    for field in ("tier_used", "screening", "escalation_reason"):
        a.pop(field), b.pop(field)
    assert a == b
