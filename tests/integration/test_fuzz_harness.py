"""Integration tests of the differential-fuzzing harness: the oracle's
verdict logic, the shrinker, the per-seed verdict cache, and soundness
smoke/soak sweeps over seed ranges."""

import pytest

from repro.fuzz import (
    FuzzCache,
    GeneratorConfig,
    format_fuzz_report,
    generate_case,
    run_case,
    run_fuzz,
    run_seed,
    shrink_case,
)
from repro.fuzz.oracle import FAILING_OUTCOMES, OUTCOMES
from repro.ir import parse_program


def _case_from(source, params, arrays, exact_strategy="inspector"):
    from repro.fuzz.generator import FuzzCase

    return FuzzCase(
        seed=0,
        program=parse_program(source),
        source=source,
        params=params,
        arrays=arrays,
        label="fuzz_loop",
        exact_strategy=exact_strategy,
    )


class TestOracleVerdicts:
    def test_independent_loop_is_sound_parallel(self):
        case = _case_from(
            "program p\nparam N\narray A(20), B(20)\nmain\n"
            "do i = 1, N @ fuzz_loop\nA[i] = B[i] + 1\nend\nend\nend\n",
            {"N": 8},
            {"A": [0] * 20, "B": list(range(20))},
        )
        result = run_case(case)
        assert result.outcome == "sound-parallel"
        assert result.parallel
        assert result.dependent is False

    def test_flow_dependent_loop_is_sound_sequential(self):
        case = _case_from(
            "program p\nparam N\narray A(20)\nmain\n"
            "do i = 2, N @ fuzz_loop\nA[i] = A[i - 1] + 1\nend\nend\nend\n",
            {"N": 8},
            {"A": [0] * 20},
        )
        result = run_case(case)
        assert result.outcome == "sound-sequential"
        assert result.dependent is True

    def test_crash_is_reported_with_layer(self):
        # Out-of-bounds write: the interpreter faults, and the oracle
        # attributes the crash instead of raising.
        case = _case_from(
            "program p\nparam N\narray A(3)\nmain\n"
            "do i = 1, N @ fuzz_loop\nA[i] = i\nend\nend\nend\n",
            {"N": 9},
            {"A": [0] * 3},
        )
        result = run_case(case)
        assert result.outcome == "crash"
        assert "interpreter:" in result.detail or "executor:" in result.detail

    def test_outcomes_vocabulary_is_closed(self):
        for seed in range(30):
            assert run_seed(seed).outcome in OUTCOMES


class TestShrinker:
    def test_shrinks_crash_to_minimal_program(self):
        source = (
            "program p\nparam N\narray A(3), B(50)\nmain\n"
            "t = 1\n"
            "do i = 1, N @ fuzz_loop\n"
            "B[i] = i\n"
            "if (i > 1) then\nB[i + 1] = 0\nend\n"
            "A[i + 3] = i\n"  # the actual out-of-bounds site
            "end\nend\nend\n"
        )
        case = _case_from(source, {"N": 4}, {"A": [0] * 3, "B": [0] * 50})
        baseline = run_case(case)
        assert baseline.outcome == "crash"
        shrunk = shrink_case(case)
        assert shrunk.outcome == "crash"
        # The unrelated statements must be gone.
        assert "B[i]" not in shrunk.case.source
        assert "if" not in shrunk.case.source
        assert shrunk.stmts_after < shrunk.stmts_before
        assert "seed 0" in shrunk.provenance
        # The minimized program still reproduces.
        assert run_case(shrunk.case).outcome == "crash"

    def test_shrink_preserves_target_loop(self):
        case = generate_case(11)
        shrunk = shrink_case(case, budget=60)
        assert shrunk.case.program.find_loop("fuzz_loop") is not None


class TestFuzzDriverAndCache:
    def test_run_fuzz_counts_and_format(self):
        report = run_fuzz(seeds=12, jobs=2)
        assert len(report.results) == 12
        assert sum(report.counts.values()) == 12
        text = format_fuzz_report(report)
        assert "Differential fuzzing: 12 seed(s)" in text
        assert "soundness:" in text
        assert "classifications:" in text

    def test_verdicts_are_cached_and_stable(self, tmp_path):
        cache = FuzzCache(str(tmp_path))
        cold = run_fuzz(seeds=6, jobs=2, cache=cache)
        warm = run_fuzz(seeds=6, jobs=2, cache=cache)
        assert warm.cache_hits == 6
        for a, b in zip(cold.results, warm.results):
            assert (a.seed, a.outcome, a.classification) == (
                b.seed, b.outcome, b.classification,
            )

    def test_cache_key_depends_on_config(self, tmp_path):
        cache = FuzzCache(str(tmp_path))
        a = GeneratorConfig()
        b = GeneratorConfig(max_trip=5)
        assert cache.seed_key(1, a) != cache.seed_key(1, b)
        assert cache.seed_key(1, a) != cache.seed_key(2, a)

    def test_seed_start_selects_range(self):
        report = run_fuzz(seeds=3, seed_start=20, jobs=1)
        assert [r.seed for r in report.results] == [20, 21, 22]


class TestSoundnessSweep:
    def test_smoke_no_soundness_violations(self):
        """Fast tier-1 guard: the first 25 seeds stay sound."""
        report = run_fuzz(seeds=25, jobs=4)
        assert report.ok, format_fuzz_report(report)

    @pytest.mark.slow
    def test_soak_no_soundness_violations(self):
        """Slow soak (excluded from -m 'not slow'): a wide seed range
        must produce zero unsound/crash verdicts."""
        report = run_fuzz(seeds=150, seed_start=1000, jobs=4)
        failing = [r for r in report.results if r.outcome in FAILING_OUTCOMES]
        assert not failing, format_fuzz_report(report, verbose_failures=10)
