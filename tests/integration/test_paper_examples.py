"""Integration tests for the paper's worked examples (Sections 1.2-4)."""

import pytest

from repro.core import HybridAnalyzer, analyze_loop
from repro.ir import parse_program
from repro.runtime import CostModel, HybridExecutor
from repro.workloads import get_benchmark


class TestSolvhDo20:
    """The Section 1.2 running example (dyfesm's SOLVH_DO20)."""

    @pytest.fixture(scope="class")
    def setup(self):
        spec = get_benchmark("dyfesm")
        plan = HybridAnalyzer(spec.program).analyze("solvh_do20")
        return spec, plan

    def test_classified_with_runtime_predicates(self, setup):
        _, plan = setup
        assert plan.classification().startswith(("F/OI", "FI", "OI"))

    def test_xe_privatized(self, setup):
        """XE's per-iteration writes are loop-invariant: privatization
        with last-value (the paper's SLV treatment)."""
        _, plan = setup
        assert plan.arrays["XE"].transform == "private"

    def test_xe_flow_predicate_matches_paper(self, setup):
        """Fig. 4: F = SYM != 1  and  NS <= 16*NP."""
        _, plan = setup
        cascade = plan.arrays["XE"].flow
        base = {"N": 2, "IA": [1] * 64, "IB": [1, 3] + [0] * 62}
        ok = dict(base, SYM=0, NS=16, NP=1)
        sym_bad = dict(base, SYM=1, NS=16, NP=1)
        ns_bad = dict(base, SYM=0, NS=17, NP=1)
        assert cascade.evaluate(ok).passed
        assert not cascade.evaluate(sym_bad).passed
        assert not cascade.evaluate(ns_bad).passed

    def test_executes_parallel_and_correct(self, setup):
        spec, plan = setup
        params, arrays = spec.dataset(1)
        report = HybridExecutor(spec.program, plan).run(params, arrays)
        assert report.parallel and report.correct

    def test_overlapping_slots_still_correct(self, setup):
        """With colliding IB slots the predicates fail; the runtime must
        fall back to something that is still correct."""
        spec, plan = setup
        params, arrays = spec.dataset(1)
        arrays = dict(arrays)
        arrays["IB"] = [1] * 64  # all iterations hit the same HE slots
        report = HybridExecutor(spec.program, plan).run(params, arrays)
        assert report.correct


class TestMonotonicityExamples:
    def test_fig3b_output_independence(self):
        """Fig. 3(b): HE's output independence via the monotone predicate
        AND_i NS <= 32*(IB(i+1)-IA(i)-IB(i)+1)."""
        src = """
program t
param N, NS
array HE(40960), IA(64), IB(64)
main
  do i = 1, N @ l
    do k = 1, IA[i]
      do j = 1, NS
        HE[32*(IB[i] + k - 2) + j] = j
      end
    end
  end
end
"""
        prog = parse_program(src)
        plan = analyze_loop(prog, "l")
        he = plan.arrays["HE"]
        cascade = he.output if he.output is not None else he.flow
        assert cascade is not None
        good = {"N": 3, "NS": 16, "IA": [2] * 64,
                "IB": [1, 3, 5] + [0] * 61}
        bad = {"N": 3, "NS": 200, "IA": [2] * 64,
               "IB": [1, 1, 1] + [0] * 61}
        assert cascade.evaluate(good).passed
        assert not cascade.evaluate(bad).passed

    def test_footnote5_reduction_monotonicity(self):
        """Section 4 footnote: B(i) < B(i+1) proves the reduction's
        updates independent (RRED upgrades to direct access)."""
        src = """
program t
param N
array A(256), B(64), W(64)
main
  do i = 1, N @ l
    A[B[i]] = A[B[i]] + W[i]
  end
end
"""
        prog = parse_program(src)
        plan = analyze_loop(prog, "l")
        rred = plan.arrays["A"].rred
        assert rred is not None
        mono = {"N": 4, "B": [1, 5, 9, 13] + [0] * 60, "W": [1] * 64,
                "A": [0] * 256}
        dup = {"N": 4, "B": [1, 5, 1, 5] + [0] * 60, "W": [1] * 64,
               "A": [0] * 256}
        assert rred.evaluate(mono).passed
        assert not rred.evaluate(dup).passed


class TestCivExample:
    """Fig. 7(b): CORREC_DO401-style conditionally incremented IV."""

    def test_civagg_static_output_independence(self):
        spec = get_benchmark("bdna")
        plan = HybridAnalyzer(spec.program).analyze("actfor_do240")
        assert plan.classification() == "CIVagg"
        assert plan.civs and plan.civs[0].name == "civ"

    def test_execution_with_civ_comp(self):
        spec = get_benchmark("bdna")
        plan = HybridAnalyzer(spec.program).analyze("actfor_do240")
        params, arrays = spec.dataset(1)
        report = HybridExecutor(spec.program, plan).run(params, arrays)
        assert report.parallel and report.correct
        assert report.civ_overhead > 0  # the CIV-COMP slice is paid


class TestUmegExample:
    """Fig. 9(b): TRANX2_DO2100 needs the UMEG-preserving reshaping."""

    def test_with_reshaping_o1_predicate(self):
        spec = get_benchmark("zeusmp")
        plan = HybridAnalyzer(spec.program).analyze("tranx2_do2100")
        d = plan.arrays["D"]
        cascades = [c for _k, c in d.runtime_cascades()]
        assert cascades
        params, arrays = spec.dataset(1)
        env = dict(params)
        env.update({k: list(v) for k, v in arrays.items()})
        env.setdefault("E", [0] * 32768)
        assert any(c.evaluate(env).passed for c in cascades)

    def test_execution(self):
        spec = get_benchmark("zeusmp")
        plan = HybridAnalyzer(spec.program).analyze("tranx2_do2100")
        params, arrays = spec.dataset(1)
        report = HybridExecutor(spec.program, plan).run(params, arrays)
        assert report.parallel and report.correct


class TestBoundsCompExample:
    """Fig. 7(a): gromacs's reduction with unknown array bounds."""

    def test_bounds_comp_planned(self):
        spec = get_benchmark("gromacs")
        plan = HybridAnalyzer(spec.program).analyze("inl1130_do1")
        assert plan.arrays["F"].needs_bounds_comp
        assert "BOUNDS-COMP" in plan.techniques()

    def test_bounds_overhead_scales_with_iterations(self):
        spec = get_benchmark("gromacs")
        plan = HybridAnalyzer(spec.program).analyze("inl1130_do1")
        ex = HybridExecutor(spec.program, plan)
        p1, a1 = spec.dataset(1)
        p2, a2 = spec.dataset(2)
        r1 = ex.run(p1, a1)
        r2 = ex.run(p2, a2)
        assert r1.correct and r2.correct
        assert r2.bounds_overhead > r1.bounds_overhead > 0


class TestTrackCivComp:
    """Section 6.2: track's while loops need CIV-COMP; the slice is
    nearly as expensive as the loop (paper: 47% overhead)."""

    def test_while_loop_parallelized(self):
        spec = get_benchmark("track")
        plan = HybridAnalyzer(spec.program).analyze("extend_do400")
        assert plan.is_while
        params, arrays = spec.dataset(1)
        report = HybridExecutor(spec.program, plan).run(params, arrays)
        assert report.parallel and report.correct

    def test_slice_overhead_substantial(self):
        spec = get_benchmark("track")
        plan = HybridAnalyzer(spec.program).analyze("extend_do400")
        params, arrays = spec.dataset(1)
        report = HybridExecutor(spec.program, plan).run(params, arrays)
        cost = CostModel(spawn_overhead=1)
        assert report.rtov(4, cost) > 0.15  # large, track-style overhead
