"""Tier-0 screening is invisible in every observable plan.

The tiered analyzer (``repro.core.screening`` driven from
``HybridAnalyzer``) is allowed to *short-circuit* cascade construction,
never to change its outcome: for every program, the plan produced with
``tiering=True`` must be identical -- as the protocol's
:class:`~repro.api.protocol.AnalyzeResponse` wire document, minus the
tier-provenance fields that describe the knob itself -- to the plan
produced with ``tiering=False``.

The fast path replays the curated corpora (regression repros, the
precision-gap harvest sample, the bench workloads, the loadgen mix);
the slow soak widens that to the full precision-gap harvest plus 300
fresh fuzz seeds disjoint from every committed corpus.

Both analyses run fully cold (``clear_caches()`` in between): the
global cascade memo would otherwise let the second mode reuse the first
mode's cascades and make the comparison vacuous for escalated loops.
"""

import json
from pathlib import Path

import pytest

from repro.api.protocol import AnalyzeResponse
from repro.core.analyzer import HybridAnalyzer
from repro.evaluation.bench import BENCH_SUITES
from repro.fuzz import generate_case, load_corpus_case
from repro.fuzz.generator import GeneratorConfig
from repro.ir.parser import parse_program
from repro.server.loadgen import build_mix
from repro.symbolic.intern import clear_caches

REGRESSION_DIR = Path(__file__).parent.parent / "regression"
GAP_CORPUS = json.loads(
    (REGRESSION_DIR / "precision_gap_corpus.json").read_text()
)

#: Same caps the fuzz oracle and the loadgen mix run under, so no
#: single adversarial generated program can stall the suite.
FUZZ_OPTIONS = {"size_cap": 3_000, "work_cap": 4_000}

#: Fresh-seed soak range: disjoint from the precision-gap harvest
#: ([0, 400)) and from loadgen's ``seed * 100_000`` blocks.
FRESH_SEEDS = range(700_000, 700_300)

#: Wire fields that describe the tiering knob rather than the analysis
#: result; stripped before comparison (and asserted separately).
TIER_FIELDS = ("tier_used", "screening", "escalation_reason")


def _fingerprint(plan) -> dict:
    doc = AnalyzeResponse.from_plan(plan, digest="equiv").to_json()
    for name in TIER_FIELDS:
        doc.pop(name, None)
    return doc


def assert_tier_equivalent(source, loop, options=None):
    options = options or {}
    plans = {}
    for tiering in (True, False):
        program = parse_program(source)
        clear_caches()
        plans[tiering] = HybridAnalyzer(
            program, tiering=tiering, **options
        ).analyze(loop)
    tiered, baseline = plans[True], plans[False]
    assert _fingerprint(tiered) == _fingerprint(baseline), (
        f"screening changed the plan of loop {loop!r}"
    )
    # provenance sanity on both sides of the knob
    assert baseline.tier_used == "tier1"
    assert baseline.screening == "off"
    assert tiered.screening in ("resolved", "escalated")
    resolved = tiered.screening == "resolved"
    assert (tiered.tier_used == "tier0") == resolved
    assert (tiered.escalation_reason == "") == resolved
    return tiered


# -- fast curated subset -----------------------------------------------------

REGRESSION_CASES = sorted((REGRESSION_DIR / "corpus").glob("*.json"))


@pytest.mark.parametrize("path", REGRESSION_CASES, ids=lambda p: p.stem)
def test_regression_corpus_equivalent(path):
    entry = load_corpus_case(path)
    assert_tier_equivalent(entry.source, entry.label, FUZZ_OPTIONS)


@pytest.mark.parametrize(
    "entry", GAP_CORPUS["seeds"][:10], ids=lambda e: f"seed{e['seed']}"
)
def test_precision_gap_sample_equivalent(entry):
    case = generate_case(entry["seed"])
    assert_tier_equivalent(case.source, case.label, FUZZ_OPTIONS)


@pytest.mark.parametrize(
    "workload", BENCH_SUITES["core"](), ids=lambda w: w.name
)
def test_bench_workloads_equivalent(workload):
    assert_tier_equivalent(workload.source, workload.loop)


def test_loadgen_mix_equivalent():
    resolved = 0
    mix = build_mix(seed=0, programs=16)
    for item in mix:
        plan = assert_tier_equivalent(item.source, item.loop, item.options)
        resolved += plan.tier_used == "tier0"
    # the committed BENCH_compile.json claims Tier-0 coverage on this
    # exact mix; keep the claim from silently rotting to zero
    assert resolved >= 4


# -- full matrix (slow soak) -------------------------------------------------


@pytest.mark.slow
def test_full_precision_gap_corpus_equivalent():
    for entry in GAP_CORPUS["seeds"]:
        case = generate_case(entry["seed"])
        assert_tier_equivalent(case.source, case.label, FUZZ_OPTIONS)


@pytest.mark.slow
def test_fresh_fuzz_seeds_equivalent():
    # small bodies keep 300 cold double-analyses tractable; the grammar
    # still exercises every feature weight
    config = GeneratorConfig(max_body_stmts=3)
    for seed in FRESH_SEEDS:
        case = generate_case(seed, config)
        assert_tier_equivalent(case.source, case.label, FUZZ_OPTIONS)
