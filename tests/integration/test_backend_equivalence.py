"""Differential backend-equivalence suite.

The contract every execution backend must meet: *for any program the
hybrid runtime validates, the backend's merged final memory is
identical to the reference interpreter's sequential execution.*  This
suite wires each backend into the existing three-way fuzz oracle
(analyzer plan vs. trace dependences vs. executed memory), so any
divergence surfaces as an ``unsound`` or ``crash`` verdict:

* every minimized repro in the regression corpus replays on every
  backend;
* a window of fresh fuzz seeds (disjoint from the CI fuzz-smoke range)
  runs on every backend -- the fast path covers a sample per backend,
  the slow soak covers the full >= 300-seed matrix the acceptance bar
  demands;
* per seed, all backends must also *agree with each other* (same
  outcome, same parallel flag): backends only change how validated
  iterations execute, never what the runtime decides.  The one
  sanctioned exception is the speculative backend, which exists to
  *upgrade* verdicts: a loop the cascade could not validate may commit
  at runtime (``precision-gap``/``sound-sequential`` ->
  ``sound-parallel``) -- but it must never downgrade a validated loop,
  and never be unsound.

Curated (non-generated) shapes -- reductions, CIVs, privatization,
while loops -- are exercised directly on top, since the fuzz grammar
draws them only probabilistically.
"""

import pytest

from repro.fuzz import generate_case, load_corpus_case, run_case
from repro.fuzz.oracle import FAILING_OUTCOMES
from repro.api import Engine, EngineConfig
from repro.runtime.backends import BACKENDS

from pathlib import Path

BACKEND_NAMES = tuple(BACKENDS)
CORPUS = sorted(
    (Path(__file__).parent.parent / "regression" / "corpus").glob("*.json")
)

#: Fresh seed window: disjoint from CI's fuzz-smoke seeds 0-49 and from
#: anything the shrinker has ever minimized into the corpus.
SEED_BASE = 20_000

#: Fast-path sample per backend (the slow soak runs the full matrix).
FAST_SEEDS = 24

#: Acceptance bar: >= 300 fresh seeds on every backend.
FULL_SEEDS = 300


def _assert_equivalent(case, backend, jobs=3, chunk=None):
    result = run_case(case, backend=backend, jobs=jobs, chunk=chunk)
    assert result.outcome not in FAILING_OUTCOMES, (
        f"seed {case.seed} on backend {backend!r}: {result.outcome} "
        f"[{result.classification}] {result.detail}"
    )
    return result


# -- corpus programs on every backend ---------------------------------------


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_equivalence_on_every_backend(path, backend):
    case = load_corpus_case(path).to_case()
    _assert_equivalent(case, backend)


# -- curated shapes on every backend ----------------------------------------

_CURATED = {
    "reduction_indirect": (
        """
program red
param N, K
array H(K), V(N), IDX(N)

main
  do i = 1, N @ target
    H[IDX[i]] = H[IDX[i]] + V[i]
  end
end
""",
        {"N": 40, "K": 5},
        {"IDX": [(i * 3) % 5 + 1 for i in range(40)],
         "V": [i % 7 for i in range(40)]},
    ),
    "privatized_temp": (
        """
program priv
param N
array T(4), OUT(N)

main
  do i = 1, N @ target
    T[1] = i * 2
    T[2] = T[1] + 1
    OUT[i] = T[2]
  end
end
""",
        {"N": 25},
        {},
    ),
    "civ_do_loop": (
        """
program civ
param N
array OUT(N)

main
  w = 0
  do i = 1, N @ target
    w = w + 1
    OUT[w] = i
  end
end
""",
        {"N": 20},
        {},
    ),
    "while_counter": (
        """
program wloop
param N
array OUT(N)

main
  k = 1
  while k <= N @ target
    OUT[k] = k * 3
    k = k + 1
  end
end
""",
        {"N": 18},
        {},
    ),
    "shared_affine": (
        """
program aff
param N
array A(N), B(N)

main
  do i = 1, N @ target
    B[i] = (A[i] * 2) + min(i, 7)
  end
end
""",
        {"N": 30},
        {"A": [i % 11 for i in range(30)]},
    ),
}


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("shape", sorted(_CURATED), ids=str)
def test_curated_shapes_on_every_backend(shape, backend):
    source, params, arrays = _CURATED[shape]
    engine = Engine(EngineConfig(use_disk_cache=False))
    report = engine.compile(source).execute(
        "target", params, arrays, backend=backend, jobs=3,
        chunk={"policy": "dynamic", "size": 4},
    )
    assert report.correct, (
        f"{shape} on {backend!r}: merged memory diverges from the "
        "interpreter"
    )
    assert report.parallel, f"{shape} should parallelize"
    assert report.backend_used in BACKEND_NAMES


# -- curated speculation shapes ----------------------------------------------

#: A non-additive indirect update: the cascade cannot validate it, the
#: inspector's verdict depends on the runtime contents of IDX, and the
#: LRPD marks decide at execution time.
_SPEC_SOURCE = """
program upd
param N, K
array H(K), IDX(N), V(N)

main
  do i = 1, N @ target
    H[IDX[i]] = V[i] + H[IDX[i]] * 2
  end
end
"""


def test_speculative_commit_on_runtime_independent_loop():
    """Distinct indices at runtime: the optimistic run commits and the
    loop is parallel after the fact."""
    engine = Engine(EngineConfig(use_disk_cache=False))
    report = engine.compile(_SPEC_SOURCE).execute(
        "target", {"N": 40, "K": 40},
        {"IDX": [((i * 7) % 40) + 1 for i in range(40)],
         "V": [i % 9 for i in range(40)]},
        backend="speculative", jobs=3,
    )
    assert report.correct and report.parallel
    assert report.backend_used == "speculative"
    assert report.speculation_commits == 1
    assert report.speculation_rollbacks == 0


def test_speculative_rollback_on_conflicting_loop():
    """Duplicate indices at runtime: the LRPD test detects the flow
    conflict, the run rolls back, and the sequential re-execution keeps
    the final memory correct."""
    engine = Engine(EngineConfig(use_disk_cache=False))
    report = engine.compile(_SPEC_SOURCE).execute(
        "target", {"N": 40, "K": 40},
        {"IDX": [((i * 3) % 8) + 1 for i in range(40)],
         "V": [i % 9 for i in range(40)]},
        backend="speculative", jobs=3,
    )
    assert report.correct and not report.parallel
    assert report.misspeculated
    assert report.speculation_commits == 0
    assert report.speculation_rollbacks == 1


# -- fresh fuzz seeds ---------------------------------------------------------


def _assert_verdict_agrees(seed, backend, reference, result):
    """Backends must not change the runtime's verdict -- except the
    speculative backend, which may *upgrade* an unvalidated loop to
    ``sound-parallel`` (never the reverse)."""
    if backend == "speculative":
        if reference.outcome == "sound-parallel":
            assert result.outcome == "sound-parallel", (
                f"seed {seed}: speculative backend downgraded a "
                f"validated loop ({result.outcome})"
            )
        else:
            assert result.outcome in (reference.outcome, "sound-parallel"), (
                f"seed {seed}: speculative backend changed the verdict "
                f"({reference.outcome} -> {result.outcome})"
            )
        return
    assert (result.outcome, result.parallel) == (
        reference.outcome, reference.parallel
    ), (
        f"seed {seed}: backend {backend!r} changed the verdict "
        f"({reference.outcome}/{reference.parallel} -> "
        f"{result.outcome}/{result.parallel})"
    )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fuzz_sample_equivalence(backend):
    """Fast path: a fresh-seed sample per backend, cross-checked for
    backend agreement against the sequential reference."""
    for seed in range(SEED_BASE, SEED_BASE + FAST_SEEDS):
        case = generate_case(seed)
        reference = _assert_equivalent(case, "sequential")
        result = _assert_equivalent(case, backend)
        _assert_verdict_agrees(seed, backend, reference, result)


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_full_matrix_equivalence(backend):
    """The acceptance bar: >= 300 fresh seeds per backend, zero unsound,
    zero crash."""
    failures = []
    for seed in range(SEED_BASE, SEED_BASE + FULL_SEEDS):
        case = generate_case(seed)
        result = run_case(case, backend=backend, jobs=4)
        if result.outcome in FAILING_OUTCOMES:
            failures.append((seed, result.outcome, result.detail))
    assert not failures, (
        f"backend {backend!r}: {len(failures)} failing seed(s), first: "
        f"{failures[0]}"
    )
