"""End-to-end tracing on the threads topology: one ``ReproServer``
whose dispatcher, pool workers and engines all append spans to the
same per-request trace.

The load-bearing contracts: a force-sampled request yields a
well-formed span tree (every parent resolves, children nest inside the
root, sibling durations sum to no more than the root), the compile
span carries profiler-bridged phase attribution, the ``trace`` verb
serves traces by id and by recency before the response reaches the
client, and the stats document gains the per-worker analysis-cache
counts and the trace-store counters.
"""

import time

import pytest

from repro.api import (
    AnalyzeRequest,
    EngineConfig,
    ExecuteRequest,
    StatsResponse,
    TraceResponse,
    wire_json,
)
from repro.server import ServerClient, ServerThread
from repro.server.tracing import PHASE_TIMERS, mint_trace_id

SOURCE_TEMPLATE = """
program tracing_{name}
param N
array A(200), B(200), IDX(200)

main
  do i = 1, N @ target
    t = B[i] + {increment}
    A[IDX[i]] = A[IDX[i]] + t
  end
end
"""

PARAMS = {"N": 20}
ARRAYS = {"IDX": [(i % 7) + 1 for i in range(200)], "B": [2] * 200}


def _source(name, increment=1):
    """A distinct program per test: a fresh digest guarantees a cold
    compile, so the phase timers actually run."""
    return SOURCE_TEMPLATE.format(name=name, increment=increment)


@pytest.fixture(scope="module")
def hosted():
    thread = ServerThread(
        workers=2, engine_config=EngineConfig(use_disk_cache=False)
    ).start()
    yield thread
    thread.stop()


def _client(hosted):
    host, port = hosted.address
    return ServerClient(host, port)


def _fetch_trace(client, trace_id):
    response = client.trace(trace_id=trace_id)
    assert isinstance(response, TraceResponse)
    assert len(response.traces) == 1
    return response.traces[0]


def _assert_well_formed(doc):
    """Parent/child integrity: one root, every parent resolves, every
    child nests inside the root interval, and the direct children's
    durations sum to no more than the root's."""
    spans = doc["spans"]
    by_id = {span["span_id"]: span for span in spans}
    root = by_id[doc["root_span_id"]]
    assert root["name"] == "request"
    for span in spans:
        parent = span["parent_span_id"]
        if span["span_id"] == doc["root_span_id"]:
            continue
        assert parent in by_id, f"dangling parent on {span['name']}"
        assert span["start_s"] >= root["start_s"] - 1e-6
        assert span["end_s"] <= root["end_s"] + 1e-6
        assert span["end_s"] >= span["start_s"]
    children = [s for s in spans if s["parent_span_id"] == doc["root_span_id"]]
    assert sum(s["duration_s"] for s in children) \
        <= root["duration_s"] + 1e-6
    return by_id, root


class TestForcedTraceSpanTree:
    def test_execute_yields_queue_compile_execute_tree(self, hosted):
        trace_id = mint_trace_id()
        request = ExecuteRequest(
            source=_source("exec_tree"), loop="target",
            params=PARAMS, arrays=ARRAYS,
            trace={"trace_id": trace_id, "sampled": True},
        )
        with _client(hosted) as client:
            response = client.call(request)
            assert response.to_json()["kind"] == "execute"
            doc = _fetch_trace(client, trace_id)
        assert doc["trace_id"] == trace_id
        assert doc["status"] == "ok"
        assert doc["sampled"] is True
        assert doc["keep"] in ("sampled", "slow")
        by_id, root = _assert_well_formed(doc)
        names = [span["name"] for span in doc["spans"]]
        for expected in ("request", "queue_wait", "compile", "execute"):
            assert expected in names, f"missing {expected} span in {names}"
        assert root["attrs"]["verb"] == "execute"
        assert root["attrs"]["tier"] == "threads"
        assert "worker" in root["attrs"]

    def test_compile_span_carries_phase_attribution(self, hosted):
        # structurally unlike every other program in this module: the
        # analyzer's cascade memo is keyed on the USR (not the source
        # digest), so only a novel subscript pattern is guaranteed to
        # pay core.factor rather than hit the memo
        source = """
program tracing_phases
param N
array C(300), D(300), J(300)

main
  do i = 1, N @ target
    u = D[i + 2] + 3
    C[J[i] + 1] = C[J[i] + 1] + u
  end
end
"""
        trace_id = mint_trace_id()
        request = AnalyzeRequest(
            source=source, loop="target",
            trace={"trace_id": trace_id, "sampled": True},
        )
        with _client(hosted) as client:
            client.call(request)
            doc = _fetch_trace(client, trace_id)
        compile_span = [s for s in doc["spans"] if s["name"] == "compile"][0]
        assert compile_span["attrs"]["cached"] is False
        phases = compile_span["attrs"]["phases"]
        assert set(phases) <= set(PHASE_TIMERS)
        assert {"summarize", "usr_build", "cascade"} <= set(phases)
        assert all(v > 0.0 for v in phases.values())
        # the attributed phase time fits inside the compile span
        assert sum(phases.values()) <= compile_span["duration_s"] + 0.05

    def test_execute_span_records_backend_attrs(self, hosted):
        trace_id = mint_trace_id()
        request = ExecuteRequest(
            source=_source("backend_attrs"), loop="target",
            params=PARAMS, arrays=ARRAYS,
            trace={"trace_id": trace_id, "sampled": True},
        )
        with _client(hosted) as client:
            client.call(request)
            doc = _fetch_trace(client, trace_id)
        execute_span = [s for s in doc["spans"] if s["name"] == "execute"][0]
        assert "backend_used" in execute_span["attrs"]
        assert execute_span["attrs"]["chunks"] >= 1

    def test_warm_repeat_is_traced_as_cached(self, hosted):
        source = _source("warm_repeat")
        with _client(hosted) as client:
            client.call(AnalyzeRequest(
                source=source, loop="target",
                trace={"trace_id": mint_trace_id(), "sampled": True},
            ))
            # an immediate repeat can still ride the first request's
            # just-resolved single-flight future (and then records a
            # coalesce_join, not a compile) -- wait out that window
            for _ in range(20):
                time.sleep(0.05)
                repeat = mint_trace_id()
                client.call(AnalyzeRequest(
                    source=source, loop="target",
                    trace={"trace_id": repeat, "sampled": True},
                ))
                doc = _fetch_trace(client, repeat)
                compiles = [s for s in doc["spans"] if s["name"] == "compile"]
                if compiles:
                    break
        assert compiles, "repeat request never reached the pool"
        assert "tier_used" in compiles[0]["attrs"]
        root = [s for s in doc["spans"]
                if s["span_id"] == doc["root_span_id"]][0]
        # the pool's cache-locality probe saw the resident program
        assert root["attrs"]["warm"] is True

    def test_coalesced_rider_records_join_span(self, hosted):
        """Pipelined identical analyzes single-flight on the dispatcher;
        the riders' traces carry a coalesce_join span instead of the
        leader's queue_wait/compile spans."""
        source = _source("coalesce", increment=9)
        trace_ids = [mint_trace_id() for _ in range(6)]
        with _client(hosted) as client:
            for trace_id in trace_ids:
                client.send_line(wire_json(AnalyzeRequest(
                    source=source, loop="target",
                    trace={"trace_id": trace_id, "sampled": True},
                ).to_json()))
            for _ in trace_ids:
                assert client.recv().to_json()["kind"] == "analyze"
            docs = [_fetch_trace(client, trace_id)
                    for trace_id in trace_ids]
        names_per_doc = [
            {span["name"] for span in doc["spans"]} for doc in docs
        ]
        assert any("compile" in names for names in names_per_doc)
        joined = [doc for doc, names in zip(docs, names_per_doc)
                  if "coalesce_join" in names]
        assert joined, "no pipelined rider coalesced"
        for doc in joined:
            _assert_well_formed(doc)


class TestErrorTraces:
    def test_bad_request_trace_is_always_kept(self, hosted):
        # sampled=False: retention rides purely on the error class
        trace_id = mint_trace_id()
        request = AnalyzeRequest(
            source=_source("bad_loop"), loop="no_such_loop",
            trace={"trace_id": trace_id, "sampled": False},
        )
        with _client(hosted) as client:
            response = client.call(request)
            assert response.code == "bad_request"
            doc = _fetch_trace(client, trace_id)
        assert doc["status"] == "error"
        assert doc["keep"] == "error"
        root = [s for s in doc["spans"]
                if s["span_id"] == doc["root_span_id"]][0]
        assert root["attrs"]["error_code"] == "bad_request"
        assert root["status"] == "error"

    def test_recent_listing_filters_by_status(self, hosted):
        with _client(hosted) as client:
            response = client.trace(limit=50, status="error")
            assert isinstance(response, TraceResponse)
            assert response.traces, "the error trace above must be listed"
            assert all(d["status"] == "error" for d in response.traces)
            # newest first
            starts = [d["start_s"] for d in response.traces]
            assert starts == sorted(starts, reverse=True)

    def test_unknown_id_returns_empty_not_error(self, hosted):
        with _client(hosted) as client:
            response = client.trace(trace_id="f" * 32)
        assert isinstance(response, TraceResponse)
        assert response.traces == []
        assert response.store["offered"] >= 1


class TestStatsExtensions:
    def test_stats_carries_analysis_cache_and_trace_store(self, hosted):
        with _client(hosted) as client:
            response = client.stats()
        assert isinstance(response, StatsResponse)
        stats = response.stats
        cache_counts = stats["analysis_cache"]
        assert len(cache_counts) == 2  # one per worker engine
        for counts in cache_counts:
            assert set(counts) == {"hits", "misses"}
            assert counts["hits"] >= 0 and counts["misses"] >= 0
        assert sum(c["misses"] for c in cache_counts) >= 1  # cold compiles
        store = stats["trace_store"]
        assert store["kept"] >= 1
        assert store["traces"] <= store["max_traces"]
        assert store["spans"] <= store["max_spans"]


class TestHeadSampling:
    def test_trace_sample_one_keeps_untraced_requests(self):
        thread = ServerThread(
            workers=1, engine_config=EngineConfig(use_disk_cache=False),
            trace_sample=1.0,
        ).start()
        try:
            host, port = thread.address
            with ServerClient(host, port) as client:
                client.call(AnalyzeRequest(
                    source=_source("head_sampled"), loop="target",
                ))
                response = client.trace(limit=10)
            assert len(response.traces) == 1
            doc = response.traces[0]
            assert doc["sampled"] is True  # upgraded at the door
            assert doc["keep"] in ("sampled", "slow")
            assert any(s["name"] == "compile" and "phases" in s["attrs"]
                       for s in doc["spans"])
        finally:
            thread.stop()

    def test_trace_sample_validation(self):
        from repro.server import ReproServer

        with pytest.raises(ValueError, match="trace_sample"):
            ReproServer(workers=1, trace_sample=1.5)
