"""Integration tests: every benchmark loop analyzes compatibly with the
paper's Tables 1-3 and executes correctly under the hybrid runtime."""

import pytest

from repro.core import HybridAnalyzer
from repro.evaluation import classification_compatible
from repro.evaluation.model import measure_benchmark
from repro.runtime import HybridExecutor, Inspector
from repro.workloads import ALL_BENCHMARKS, TLS_LOOPS

_CASES = [
    (spec, loop) for spec in ALL_BENCHMARKS for loop in spec.loops
]
_IDS = [f"{spec.name}:{loop.label}" for spec, loop in _CASES]

_ANALYZERS: dict = {}
_MEASUREMENTS: dict = {}


def _analyzer(spec):
    if spec.name not in _ANALYZERS:
        _ANALYZERS[spec.name] = HybridAnalyzer(spec.program)
    return _ANALYZERS[spec.name]


def _measurement(spec):
    if spec.name not in _MEASUREMENTS:
        _MEASUREMENTS[spec.name] = measure_benchmark(spec, system="hybrid")
    return _MEASUREMENTS[spec.name]


@pytest.mark.parametrize("spec,loop", _CASES, ids=_IDS)
def test_execution_correct(spec, loop):
    """Ground truth: whatever the runtime decides, the final memory must
    equal the sequential result."""
    m = _measurement(spec).loops[loop.label]
    assert m.correct


@pytest.mark.parametrize("spec,loop", _CASES, ids=_IDS)
def test_parallelization_matches_paper(spec, loop):
    """The loop parallelizes exactly when the paper's system did."""
    m = _measurement(spec).loops[loop.label]
    assert m.parallel == loop.paper_parallel


@pytest.mark.parametrize("spec,loop", _CASES, ids=_IDS)
def test_classification_compatible(spec, loop):
    """The runtime-refined classification is consistent with the table."""
    m = _measurement(spec).loops[loop.label]
    assert classification_compatible(m.runtime_label, loop.paper_class), (
        f"{spec.name}:{loop.label}: measured {m.runtime_label!r} vs "
        f"paper {loop.paper_class!r}"
    )


@pytest.mark.parametrize(
    "spec", ALL_BENCHMARKS, ids=[s.name for s in ALL_BENCHMARKS]
)
def test_benchmark_coverage_sane(spec):
    assert 0 < spec.sc <= 1.0
    # The paper's own LSC columns overshoot SC by up to a few percent
    # (rounding); norm_time clamps internally.
    assert spec.measured_coverage() <= spec.sc + 0.05


def test_tls_loops_use_speculation():
    from repro.workloads import get_benchmark

    for name, label in (("track", "nlfilt_do300"), ("spec77", "gwater_do190")):
        spec = get_benchmark(name)
        m = _measurement(spec).loops[label]
        assert m.runtime_label == "TLS"


def test_hoist_usr_loops_use_inspector():
    from repro.workloads import get_benchmark

    spec = get_benchmark("apsi")
    m = _measurement(spec).loops["run_do20"]
    assert m.runtime_label in ("HOIST-USR",) or m.runtime_label.startswith("OI")


def test_scale_2_still_correct():
    """A larger dataset keeps every decision correct (spot check)."""
    from repro.workloads import get_benchmark

    for name in ("dyfesm", "track", "gromacs"):
        spec = get_benchmark(name)
        m = measure_benchmark(spec, system="hybrid", scale=2)
        for label, lm in m.loops.items():
            assert lm.correct, f"{name}:{label} incorrect at scale 2"
