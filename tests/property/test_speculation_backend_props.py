"""Property tests for the speculative execution backend.

Three claims, each checked over fuzz-generated programs and curated
shapes:

* **rollback is exact** -- applying speculative outcomes to a working
  copy and then undoing them from the log restores byte-identical
  pre-loop memory, whatever the loop did;
* **marks agree with the trace oracle** -- the LRPD verdict computed
  from the optimistic run's shadow marks matches the verdict computed
  from an in-order dependence trace of the same loop;
* **the outcome is schedule-independent** -- commit/rollback counts and
  the privatized set do not depend on the worker count or the chunk
  policy, because the marks derive from per-iteration outcomes alone.
"""

import copy

import pytest

from repro.api import Engine, EngineConfig
from repro.fuzz import generate_case
from repro.ir import Machine
from repro.runtime.backends.base import execute_positions
from repro.runtime.backends.speculative import apply_outcomes, rollback
from repro.runtime.speculation import lrpd_marks, lrpd_test

#: Fuzz seeds used by the backend-level properties below.  A case only
#: qualifies when its target loop executes at least once (capture_task
#: refuses degenerate loops).
SEEDS = range(60)


def _capture(case):
    engine = Engine(EngineConfig(use_disk_cache=False))
    executor = engine.compile(case.program).executor(
        case.label, backend="speculative"
    )
    try:
        return executor.capture_task(case.params, case.arrays)
    except ValueError:
        return None  # loop never executed for these inputs


def _optimistic(task):
    return execute_positions(
        task.program,
        task.label,
        task.params,
        task.pre_arrays,
        task.pre_scalars,
        task.frame_arrays,
        task.iterations,
        task.civ_names,
        task.civ_values,
        task.index_name,
        list(range(len(task.iterations))),
        per_iteration_snapshot=False,
        record_exposed=True,
    )


# -- rollback restores byte-identical memory ---------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_rollback_restores_pre_loop_memory(seed):
    task = _capture(generate_case(seed))
    if task is None:
        pytest.skip("target loop never executed")
    outcomes = _optimistic(task)
    pre_snapshot = copy.deepcopy(task.pre_arrays)
    working = {k: list(v) for k, v in task.pre_arrays.items()}
    undo = apply_outcomes(working, task.pre_arrays, outcomes, task.decisions)
    rollback(working, undo)
    assert working == pre_snapshot
    # the log never mutates the canonical pre-state either
    assert task.pre_arrays == pre_snapshot


# -- marks verdict agrees with the trace oracle ------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_marks_agree_with_trace_oracle(seed):
    case = generate_case(seed)
    task = _capture(case)
    if task is None:
        pytest.skip("target loop never executed")
    outcomes = _optimistic(task)
    marks = lrpd_marks(
        ((o.position, o.writes, o.exposed) for o in outcomes),
        privatize=True,
    )
    machine = Machine(
        case.program,
        params=case.params,
        arrays=copy.deepcopy(case.arrays),
        trace_label=case.label,
    )
    trace = machine.run().trace
    assert trace is not None
    oracle = lrpd_test(trace, privatize=True)
    assert marks.success == oracle.success, (
        f"seed {seed}: marks said success={marks.success}, trace oracle "
        f"said success={oracle.success}"
    )
    if marks.success:
        assert marks.privatized == oracle.privatized


# -- commit/rollback outcome is schedule-independent -------------------------

_SCHEDULES = (
    {"jobs": 1, "chunk": None},
    {"jobs": 2, "chunk": {"policy": "static", "size": None}},
    {"jobs": 4, "chunk": {"policy": "dynamic", "size": 3}},
    {"jobs": 4, "chunk": {"policy": "static", "size": 5}},
)

_COMMIT_SOURCE = """
program upd
param N, K
array H(K), IDX(N), V(N)

main
  do i = 1, N @ target
    H[IDX[i]] = V[i] + H[IDX[i]] * 2
  end
end
"""


def _spec_report(source, params, arrays, schedule):
    engine = Engine(EngineConfig(use_disk_cache=False))
    return engine.compile(source).execute(
        "target", params, arrays, backend="speculative", **schedule
    )


@pytest.mark.parametrize("conflicting", (False, True), ids=("commit", "rollback"))
def test_outcome_is_schedule_independent_curated(conflicting):
    if conflicting:
        idx = [((i * 3) % 8) + 1 for i in range(40)]
    else:
        idx = [((i * 7) % 40) + 1 for i in range(40)]
    arrays = {"IDX": idx, "V": [i % 9 for i in range(40)]}
    reports = [
        _spec_report(_COMMIT_SOURCE, {"N": 40, "K": 40}, arrays, schedule)
        for schedule in _SCHEDULES
    ]
    outcomes = {
        (
            r.speculation_commits,
            r.speculation_rollbacks,
            tuple(r.speculation_privatized),
            r.parallel,
            r.correct,
        )
        for r in reports
    }
    assert len(outcomes) == 1, f"schedule-dependent outcomes: {outcomes}"
    assert all(r.correct for r in reports)
    assert reports[0].speculation_rollbacks == (1 if conflicting else 0)


@pytest.mark.parametrize("seed", (23, 28, 37, 45))
def test_outcome_is_schedule_independent_on_gap_seeds(seed):
    """Precision-gap fuzz seeds: whatever the speculative verdict is, it
    must not depend on the schedule."""
    case = generate_case(seed)
    engine = Engine(EngineConfig(use_disk_cache=False))
    compiled = engine.compile(case.program)
    outcomes = set()
    for schedule in _SCHEDULES:
        report = compiled.execute(
            case.label, case.params, case.arrays,
            backend="speculative", **schedule,
        )
        assert report.correct
        outcomes.add(
            (
                report.speculation_commits,
                report.speculation_rollbacks,
                tuple(report.speculation_privatized),
                report.parallel,
            )
        )
    assert len(outcomes) == 1, f"seed {seed}: {outcomes}"
