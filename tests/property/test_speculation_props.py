"""Property tests for LRPD speculation against the trace oracle.

The headline property: for any traced loop with no cross-iteration
dependences, ``lrpd_test`` succeeds, and its ``privatized`` set is
always consistent with the trace's expose-reads (a privatized array is
never expose-read across iterations).  Exercised both over synthetic
traces (hypothesis) and over real traces of fuzz-generated programs.
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz import generate_case
from repro.ir import Machine
from repro.ir.interp import IterationRecord, LoopTrace
from repro.runtime.speculation import lrpd_test

ARRAYS = ("A", "B")
LOCS = list(range(1, 12))


@st.composite
def independent_traces(draw):
    """Traces with no cross-iteration dependences by construction:
    writes are drawn from per-iteration disjoint location blocks, and
    exposed reads touch only own-written or never-written locations."""
    n_iters = draw(st.integers(1, 4))
    # Partition the universe: block k belongs to iteration k; the tail
    # is the shared never-written pool.
    per_iter = len(LOCS) // (n_iters + 1)
    trace = LoopTrace("t")
    free_pool = LOCS[n_iters * per_iter:]
    for it in range(n_iters):
        block = LOCS[it * per_iter:(it + 1) * per_iter]
        rec = IterationRecord(iteration=it + 1)
        for arr in ARRAYS:
            writes = draw(st.sets(st.sampled_from(block), max_size=3)) if block else set()
            if writes:
                rec.writes[arr] = set(writes)
            readable = sorted(set(writes) | set(free_pool))
            reads = draw(st.sets(st.sampled_from(readable), max_size=3)) if readable else set()
            if reads:
                rec.exposed_reads[arr] = set(reads)
        trace.iterations.append(rec)
    return trace


@st.composite
def arbitrary_traces(draw):
    n_iters = draw(st.integers(1, 4))
    trace = LoopTrace("t")
    for it in range(n_iters):
        rec = IterationRecord(iteration=it + 1)
        for arr in ARRAYS:
            writes = draw(st.sets(st.sampled_from(LOCS), max_size=4))
            reads = draw(st.sets(st.sampled_from(LOCS), max_size=4))
            if writes:
                rec.writes[arr] = set(writes)
            if reads:
                rec.exposed_reads[arr] = set(reads)
        trace.iterations.append(rec)
    return trace


def _flow_conflict(trace, array):
    """Is some location of *array* written in one iteration and
    expose-read in a different one?"""
    writers = {}
    for rec in trace.iterations:
        for loc in rec.writes.get(array, ()):
            writers.setdefault(loc, set()).add(rec.iteration)
    for rec in trace.iterations:
        for loc in rec.exposed_reads.get(array, ()):
            if writers.get(loc, set()) - {rec.iteration}:
                return True
    return False


@given(independent_traces())
@settings(max_examples=120, deadline=None)
def test_independent_trace_speculates_successfully(trace):
    assert not trace.has_cross_iteration_dependence()
    result = lrpd_test(trace)
    assert result.success
    # Nothing needed privatization: no output conflicts exist at all.
    assert result.privatized == frozenset()


@given(arbitrary_traces())
@settings(max_examples=150, deadline=None)
def test_privatized_set_is_consistent_with_expose_reads(trace):
    result = lrpd_test(trace)
    if result.success:
        for array in result.privatized:
            assert not _flow_conflict(trace, array)
    else:
        # A failure must be justified by a genuine flow conflict.
        assert any(_flow_conflict(trace, a) for a in ARRAYS)


@given(arbitrary_traces())
@settings(max_examples=100, deadline=None)
def test_no_privatization_mode_rejects_output_conflicts(trace):
    strict = lrpd_test(trace, privatize=False)
    if strict.success:
        assert trace.output_independent()


@pytest.mark.parametrize("seed", range(30))
def test_generated_traces_uphold_the_property(seed):
    """The same property over real traces: trace a fuzz-generated
    program's target loop and cross-check lrpd_test against it."""
    case = generate_case(seed)
    machine = Machine(
        case.program,
        params=case.params,
        arrays=copy.deepcopy(case.arrays),
        trace_label=case.label,
    )
    trace = machine.run().trace
    assert trace is not None
    result = lrpd_test(trace)
    if not trace.has_cross_iteration_dependence():
        assert result.success
        assert result.privatized == frozenset()
    if result.success:
        for array in result.privatized:
            assert not _flow_conflict(trace, array)
