"""Properties of the kernel profiler (:mod:`repro.evaluation.profile`).

The profiler sits inside the analyzer's hottest kernels, so its
contract is behavioural, not just API-shaped:

* counters are **exact** -- every call increments, including recursive
  re-entry, and counts survive nesting in any order;
* timers are **wall-honest** -- a recursive kernel accumulates
  inclusive time at its outermost activation only, so no timer can
  report more time than the wall clock that elapsed around it;
* the **disabled path costs nearly nothing** -- no state mutation at
  all, and per-call overhead bounded within noise of a bare call.
"""

import random
from time import perf_counter

import pytest

from repro.evaluation import profile as prof


@pytest.fixture(autouse=True)
def _clean_profiler():
    prof.disable()
    prof.reset()
    yield
    prof.disable()
    prof.reset()


class TestCounters:
    def test_exact_under_nesting(self):
        @prof.timed("outer")
        def outer(n):
            prof.count("ticks")
            if n:
                inner(n)

        @prof.timed("inner")
        def inner(n):
            prof.count("ticks", 2)
            outer(n - 1)

        with prof.profiling():
            outer(5)
            snap = prof.snapshot()
        # outer runs at n=5..0 (6 calls), inner at n=5..1 (5 calls)
        assert snap.calls["outer"] == 6
        assert snap.calls["inner"] == 5
        assert snap.counts["ticks"] == 6 + 2 * 5

    def test_randomized_count_totals(self):
        rng = random.Random(7)
        expected: dict = {}
        with prof.profiling():
            for _ in range(500):
                name = rng.choice("abc")
                n = rng.randrange(1, 9)
                expected[name] = expected.get(name, 0) + n
                prof.count(name, n)
            assert prof.snapshot().counts == expected

    def test_disabled_records_nothing(self):
        prof.count("never", 10)
        with prof.timer("never"):
            pass
        snap = prof.snapshot()
        assert snap.counts == {} and snap.times == {} and snap.calls == {}


class TestTimers:
    def test_recursive_total_bounded_by_wall(self):
        @prof.timed("recurse")
        def recurse(n):
            if n:
                recurse(n - 1)

        with prof.profiling():
            start = perf_counter()
            recurse(200)
            wall = perf_counter() - start
            snap = prof.snapshot()
        assert snap.calls["recurse"] == 201
        # inclusive-at-outermost: one activation's elapsed time, never
        # the (~201x larger) sum over every frame
        assert snap.times["recurse"] <= wall + 1e-9

    def test_mutually_nested_timers_bounded_by_wall(self):
        with prof.profiling():
            start = perf_counter()
            for _ in range(50):
                with prof.timer("a"):
                    with prof.timer("b"):
                        with prof.timer("a"):
                            pass
            wall = perf_counter() - start
            snap = prof.snapshot()
        assert snap.calls["a"] == 100 and snap.calls["b"] == 50
        assert snap.times["a"] <= wall + 1e-9
        assert snap.times["b"] <= wall + 1e-9

    def test_concurrent_timers_never_leak_depth(self):
        """Two threads inside the same timer must not corrupt each
        other's outermost-activation bookkeeping: with a shared depth
        map, the interleaving enter(A) enter(B) exit(A) exit(B) left
        the depth stuck at 1 and the timer silently dead forever --
        the serving tier hits exactly this when phase attribution
        enables the profiler while several pool workers compile."""
        import threading

        a_inside = threading.Event()
        b_inside = threading.Event()
        a_exited = threading.Event()

        def first():  # enters at depth 0, exits while B is inside
            with prof.timer("shared"):
                a_inside.set()
                b_inside.wait(timeout=5)
            a_exited.set()

        def second():  # enters at depth 1, exits last
            a_inside.wait(timeout=5)
            with prof.timer("shared"):
                b_inside.set()
                a_exited.wait(timeout=5)

        with prof.profiling():
            threads = [threading.Thread(target=first),
                       threading.Thread(target=second)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            before = prof.snapshot().times.get("shared", 0.0)
            with prof.timer("shared"):
                pass
            snap = prof.snapshot()
        # a later solo activation still records as outermost
        assert snap.times["shared"] > before

    def test_timer_depth_recovers_after_exception(self):
        @prof.timed("boom")
        def boom():
            raise ValueError("x")

        with prof.profiling():
            for _ in range(3):
                with pytest.raises(ValueError):
                    boom()
            snap = prof.snapshot()
        assert snap.calls["boom"] == 3
        # depth unwound correctly: all three record as outermost
        assert snap.times["boom"] >= 0.0


class TestOverhead:
    def test_disabled_overhead_is_small(self):
        def bare(x):
            return x + 1

        @prof.timed("wrapped")
        def wrapped(x):
            return x + 1

        n = 50_000

        def measure(fn):
            best = None
            for _ in range(5):
                start = perf_counter()
                for i in range(n):
                    fn(i)
                elapsed = perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            return best

        prof.disable()
        base = measure(bare)
        overhead = measure(wrapped)
        # the disabled path is one attribute load and a falsy branch on
        # top of the call; allow generous headroom for CI noise, but a
        # perf_counter call or dict mutation per call would blow way
        # past 5x
        assert overhead <= base * 5 + 0.01

    def test_disabled_call_passes_through(self):
        @prof.timed("ident")
        def ident(x):
            return x

        assert ident(42) == 42
        assert prof.snapshot().calls == {}


class TestLifecycle:
    def test_profiling_restores_prior_state(self):
        prof.enable()
        with prof.profiling():
            assert prof.is_enabled()
        assert prof.is_enabled()
        prof.disable()
        with prof.profiling():
            pass
        assert not prof.is_enabled()

    def test_fresh_resets_but_enable_accumulates(self):
        with prof.profiling():
            prof.count("x")
        with prof.profiling(fresh=False):
            prof.count("x")
        assert prof.snapshot().counts["x"] == 2
        with prof.profiling(fresh=True):
            prof.count("x")
        assert prof.snapshot().counts["x"] == 1

    def test_snapshot_is_a_copy(self):
        with prof.profiling():
            prof.count("x")
            snap = prof.snapshot()
            prof.count("x")
        assert snap.counts["x"] == 1
        assert prof.snapshot().counts["x"] == 2

    def test_format_lists_timers_and_counters(self):
        with prof.profiling():
            prof.count("widgets", 3)
            with prof.timer("spin"):
                pass
            text = prof.snapshot().format()
        assert "widgets" in text and "spin" in text
