"""Property-based tests (hypothesis) on the core invariants.

The single most important property of the whole system is FACTOR's
sufficiency: whenever the extracted predicate evaluates true, the USR it
was derived from denotes the empty set.  We exercise it over randomly
generated USR trees and environments, alongside algebraic laws of the
expression language and soundness of the LMAD comparisons.
"""

from hypothesis import given, settings, strategies as st

from repro.core import factor
from repro.lmad import LMAD, disjoint_lmads, included_lmads
from repro.symbolic import as_expr, sym
from repro.usr import (
    usr_gate,
    usr_intersect,
    usr_leaf,
    usr_recurrence,
    usr_subtract,
    usr_union,
)

# -- expression ring laws -----------------------------------------------------

names = st.sampled_from(["x", "y", "z"])


@st.composite
def exprs(draw, depth=2):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return as_expr(draw(st.integers(-5, 5)))
        return sym(draw(names))
    op = draw(st.integers(0, 2))
    a = draw(exprs(depth=depth - 1))
    b = draw(exprs(depth=depth - 1))
    return a + b if op == 0 else (a - b if op == 1 else a * b)


envs = st.fixed_dictionaries(
    {"x": st.integers(-7, 7), "y": st.integers(-7, 7), "z": st.integers(-7, 7)}
)


@given(exprs(), exprs(), envs)
@settings(max_examples=80, deadline=None)
def test_expr_addition_commutes(a, b, env):
    assert (a + b).evaluate(env) == (b + a).evaluate(env)
    assert (a + b) == (b + a)


@given(exprs(), exprs(), exprs(), envs)
@settings(max_examples=60, deadline=None)
def test_expr_distributivity(a, b, c, env):
    lhs = a * (b + c)
    rhs = a * b + a * c
    assert lhs == rhs
    assert lhs.evaluate(env) == rhs.evaluate(env)


@given(exprs(), envs)
@settings(max_examples=60, deadline=None)
def test_expr_eval_matches_substitution(a, env):
    """Substituting constants then evaluating equals direct evaluation."""
    subbed = a.substitute({k: as_expr(v) for k, v in env.items()})
    assert subbed.is_constant()
    assert subbed.constant_value() == a.evaluate(env)


# -- LMAD comparison soundness -------------------------------------------------


@st.composite
def small_lmads(draw):
    base = draw(st.integers(0, 12))
    ndims = draw(st.integers(0, 2))
    strides, spans = [], []
    for _ in range(ndims):
        d = draw(st.integers(1, 4))
        count = draw(st.integers(1, 4))
        strides.append(d)
        spans.append(d * (count - 1))
    return LMAD(strides, spans, base)


@given(small_lmads(), small_lmads())
@settings(max_examples=150, deadline=None)
def test_disjoint_predicate_sound(a, b):
    if disjoint_lmads(a, b).evaluate({}):
        assert not (a.enumerate({}) & b.enumerate({}))


@given(small_lmads(), small_lmads())
@settings(max_examples=150, deadline=None)
def test_included_predicate_sound(a, b):
    if included_lmads(a, b).evaluate({}):
        assert a.enumerate({}) <= b.enumerate({})


@given(small_lmads())
@settings(max_examples=60, deadline=None)
def test_dense_interval_sound(a):
    from repro.lmad import dense_interval

    span = dense_interval(a)
    if span is not None:
        lo, hi = span
        concrete = a.enumerate({})
        assert concrete == set(range(lo.evaluate({}), hi.evaluate({}) + 1))


# -- USR evaluation vs set semantics -------------------------------------------


@st.composite
def small_usrs(draw, depth=2):
    from repro.symbolic import cmp_ge

    if depth == 0:
        lo = draw(st.integers(0, 8))
        size = draw(st.integers(-1, 6))
        from repro.lmad import interval

        return usr_leaf(interval(lo, lo + size))
    kind = draw(st.integers(0, 4))
    a = draw(small_usrs(depth=depth - 1))
    b = draw(small_usrs(depth=depth - 1))
    if kind == 0:
        return usr_union(a, b)
    if kind == 1:
        return usr_intersect(a, b)
    if kind == 2:
        return usr_subtract(a, b)
    if kind == 3:
        return usr_gate(cmp_ge(sym("g"), draw(st.integers(0, 2))), a)
    lo = draw(st.integers(1, 2))
    hi = draw(st.integers(2, 4))
    shift = draw(st.integers(0, 3))
    shifted = a.substitute({})  # keep a as-is; offset via leaf below
    from repro.lmad import point

    body = usr_union(a, usr_leaf(point(sym("i") * shift)))
    return usr_recurrence("i", lo, hi, body)


@given(small_usrs(), st.integers(0, 2))
@settings(max_examples=100, deadline=None)
def test_usr_constructors_preserve_semantics(u, g):
    """Smart-constructor simplifications never change the denoted set:
    substituting is the identity on closed nodes."""
    env = {"g": g}
    out = u.evaluate(env)
    assert isinstance(out, set)
    # Substitution with an empty mapping is semantically neutral.
    assert u.substitute({}).evaluate(env) == out


@given(small_usrs(), st.integers(0, 2))
@settings(max_examples=100, deadline=None)
def test_factor_sufficiency(u, g):
    """THE paper invariant: F(S) = true  =>  S = empty."""
    env = {"g": g}
    pred = factor(u)
    if pred.evaluate(env):
        assert u.evaluate(env) == set()


@given(small_usrs(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_cascade_stages_sufficient(u, g):
    """Every cascade stage is itself a sufficient emptiness condition."""
    from repro.pdag import build_cascade

    env = {"g": g}
    cascade = build_cascade(factor(u))
    for stage in cascade.stages:
        if stage.predicate.evaluate(env):
            assert u.evaluate(env) == set()


# -- estimates -------------------------------------------------------------


@given(small_usrs(), st.integers(0, 2))
@settings(max_examples=80, deadline=None)
def test_overestimate_covers(u, g):
    from repro.usr import overestimate

    env = {"g": g}
    est = overestimate(u)
    concrete = u.evaluate(env)
    if est.pred.evaluate(env):
        assert concrete == set()
    elif not est.failed:
        cover = set()
        for lmad in est.lmads:
            cover |= lmad.enumerate(env)
        assert concrete <= cover


@given(small_usrs(), st.integers(0, 2))
@settings(max_examples=80, deadline=None)
def test_underestimate_contained(u, g):
    from repro.usr import underestimate

    env = {"g": g}
    est = underestimate(u)
    if not est.failed and est.pred.evaluate(env):
        under = set()
        for lmad in est.lmads:
            under |= lmad.enumerate(env)
        assert under <= u.evaluate(env)


# -- reshaping preserves semantics ---------------------------------------------


@given(small_usrs(), st.integers(0, 2))
@settings(max_examples=80, deadline=None)
def test_reshape_preserves_semantics(u, g):
    from repro.usr import reshape

    env = {"g": g}
    assert reshape(u).evaluate(env) == u.evaluate(env)
