"""Cache-correctness properties of the hash-consed analysis core.

Two invariants guard the memoization layers:

1. Caching must be *semantically invisible*: analyzing a loop with warm
   caches (maximal sharing, every memo table populated) must yield
   exactly the same :class:`~repro.core.analyzer.LoopPlan` as a
   cold-start analysis with every cache cleared.  The plans are compared
   by a structural fingerprint covering classification, techniques and
   every per-array cascade.
2. The batch driver's persistent cache must key on the benchmark's
   program text: any edit to the source invalidates the entry, while an
   unchanged program round-trips bit-identically.
"""

from __future__ import annotations

import pytest

from repro.core import HybridAnalyzer, LoopPlan
from repro.evaluation.batch import BatchCache, analyze_benchmark
from repro.symbolic import clear_caches
from repro.workloads import ALL_BENCHMARKS, BenchmarkSpec, LoopSpec


def _plan_fingerprint(plan: LoopPlan) -> tuple:
    """A deep structural summary of everything a LoopPlan decides."""
    arrays = tuple(
        (
            name,
            ap.transform,
            repr(ap.flow),
            repr(ap.output),
            repr(ap.slv),
            repr(ap.rred),
            ap.needs_bounds_comp,
            ap.extended_reduction,
            ap.needs_exact,
            repr(ap.exact_usr),
        )
        for name, ap in sorted(plan.arrays.items())
    )
    return (
        plan.label,
        plan.index,
        repr(plan.lower),
        repr(plan.upper),
        plan.classification(),
        tuple(plan.techniques()),
        plan.approximate,
        plan.is_while,
        arrays,
    )


def _suite_fingerprints() -> dict:
    out = {}
    for spec in ALL_BENCHMARKS:
        analyzer = HybridAnalyzer(spec.program)
        for loop in spec.loops:
            out[(spec.name, loop.label)] = _plan_fingerprint(
                analyzer.analyze(loop.label)
            )
    return out


def test_interned_and_fresh_analysis_agree_across_suite():
    """Warm-cache plans == cold-start plans for every workload loop."""
    clear_caches()
    _suite_fingerprints()  # populate every cache
    warm = _suite_fingerprints()  # served almost entirely from memos
    clear_caches()
    fresh = _suite_fingerprints()  # recomputed from scratch
    assert warm == fresh


# -- persistent batch cache -------------------------------------------------

_TINY_SOURCE = """
program tiny
param N
array A(128)

main
  do i = 1, N @ tiny_do1
    A[i] = A[i] + 1
  end
end
"""


def _tiny_spec(source: str = _TINY_SOURCE) -> BenchmarkSpec:
    return BenchmarkSpec(
        name="tiny",
        suite="spec92",
        sc=1.0,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[LoopSpec("tiny_do1", 1.0, 1.0, "STATIC-PAR")],
        techniques_paper=[],
        dataset=lambda scale: ({"N": 16 * scale}, {"A": [0] * 128}),
    )


def test_batch_cache_round_trip(tmp_path):
    cache = BatchCache(str(tmp_path))
    spec = _tiny_spec()
    first = analyze_benchmark(spec, cache=cache)
    assert not first.cached
    second = analyze_benchmark(spec, cache=cache)
    assert second.cached
    assert second.to_json() == first.to_json()


def test_batch_cache_invalidates_on_program_text_change(tmp_path):
    cache = BatchCache(str(tmp_path))
    spec = _tiny_spec()
    analyze_benchmark(spec, cache=cache)
    edited = _tiny_spec(_TINY_SOURCE.replace("A[i] + 1", "A[i] + 2"))
    assert cache.key(spec, "hybrid", 1) != cache.key(edited, "hybrid", 1)
    assert cache.load(edited, "hybrid", 1) is None  # stale entry unreachable
    rerun = analyze_benchmark(edited, cache=cache)
    assert not rerun.cached  # really recomputed


def test_batch_cache_keys_on_scale_and_system(tmp_path):
    cache = BatchCache(str(tmp_path))
    spec = _tiny_spec()
    keys = {
        cache.key(spec, "hybrid", 1),
        cache.key(spec, "hybrid", 2),
        cache.key(spec, "baseline", 1),
    }
    assert len(keys) == 3


def test_batch_cache_tolerates_corrupt_entries(tmp_path):
    cache = BatchCache(str(tmp_path))
    spec = _tiny_spec()
    analyze_benchmark(spec, cache=cache)
    for path in tmp_path.glob("*.json"):
        path.write_text("{not json")
    assert cache.load(spec, "hybrid", 1) is None
    result = analyze_benchmark(spec, cache=cache)
    assert not result.cached  # recomputed, and the entry is repaired
    assert cache.load(spec, "hybrid", 1) is not None
