"""Property tests of the trace store's retention invariants.

Under *any* sequence of offered traces -- arbitrary statuses,
durations, span counts and sampling flags, with a deterministic rng
driving the probabilistic class -- the store must (1) never exceed its
trace-count or span-count caps, (2) keep its internal span accounting
exact, and (3) evict strictly lowest-retention-class first, so an
error trace is never displaced by anything of a lower class that
arrived later.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.server.tracing import KEEP_PRIORITY, TraceStore

# -- generators ---------------------------------------------------------------

statuses = st.sampled_from(["ok", "error"])
durations = st.sampled_from([0.001, 0.01, 0.3, 1.0])  # straddles slow_s
span_counts = st.integers(min_value=1, max_value=12)


@st.composite
def trace_docs(draw, index):
    status = draw(statuses)
    duration = draw(durations)
    spans = draw(span_counts)
    return {
        "trace_id": f"trace-{index}-{draw(st.integers(0, 2))}",
        "root_span_id": f"trace-{index}-root",
        "status": status,
        "sampled": draw(st.booleans()),
        "start_s": float(index),
        "duration_s": duration,
        "spans": [
            {"span_id": f"trace-{index}-s{i}", "parent_span_id": None,
             "name": "request", "start_s": float(index),
             "end_s": float(index) + duration, "duration_s": duration,
             "status": status, "attrs": {}}
            for i in range(spans)
        ],
    }


@st.composite
def offer_sequences(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    return [draw(trace_docs(i)) for i in range(count)]


caps = st.tuples(
    st.integers(min_value=1, max_value=8),     # max_traces
    st.integers(min_value=1, max_value=40),    # max_spans
)


def _store(max_traces, max_spans, seed):
    return TraceStore(
        max_traces=max_traces, max_spans=max_spans,
        keep_probability=0.5, rng=random.Random(seed),
    )


@given(sequence=offer_sequences(), bounds=caps,
       seed=st.integers(min_value=0, max_value=9))
@settings(max_examples=150, deadline=None)
def test_store_never_exceeds_its_caps(sequence, bounds, seed):
    max_traces, max_spans = bounds
    store = _store(max_traces, max_spans, seed)
    for doc in sequence:
        store.offer(doc)
        assert len(store) <= max_traces
        assert store.span_total <= max_spans
    # the span accounting is exact, not merely bounded
    kept = [store.get(d["trace_id"]) for d in sequence]
    kept_ids = {d["trace_id"]: d for d in kept if d is not None}
    assert store.span_total == sum(
        len(d["spans"]) for d in kept_ids.values()
    )
    snap = store.snapshot()
    assert snap["offered"] == len(sequence)
    assert snap["kept"] + snap["sampled_out"] == snap["offered"]


@given(sequence=offer_sequences(), bounds=caps,
       seed=st.integers(min_value=0, max_value=9))
@settings(max_examples=150, deadline=None)
def test_eviction_never_prefers_a_higher_class_victim(sequence, bounds, seed):
    """Whenever a kept trace later disappears, every trace still in the
    store that predates the eviction... is hard to observe directly, so
    we check the observable consequence: after any offer, the minimum
    retention class in the store is never *above* the class of a trace
    that was evicted to admit it -- equivalently, an error trace can
    only be displaced when the store holds nothing but errors."""
    max_traces, max_spans = bounds
    store = _store(max_traces, max_spans, seed)
    admitted_errors = []
    for doc in sequence:
        before = {tid for tid in admitted_errors if store.get(tid)}
        kept = store.offer(doc)
        new_class = store.classify(doc)
        if kept and new_class == "error":
            admitted_errors.append(doc["trace_id"])
        # an error trace may only be evicted by another error trace
        for tid in before:
            if store.get(tid) is None and tid != doc["trace_id"]:
                assert new_class == "error", (
                    f"error trace {tid} displaced by a {new_class} trace"
                )


@given(seed=st.integers(min_value=0, max_value=999))
@settings(max_examples=50, deadline=None)
def test_extend_respects_the_span_cap(seed):
    rng = random.Random(seed)
    store = TraceStore(max_traces=8, max_spans=16,
                       keep_probability=1.0, rng=random.Random(seed))
    base = {
        "trace_id": "t", "root_span_id": "t-root", "status": "error",
        "sampled": False, "start_s": 0.0, "duration_s": 0.0,
        "spans": [{"span_id": "t-root", "parent_span_id": None,
                   "name": "request", "start_s": 0.0, "end_s": 0.0,
                   "duration_s": 0.0, "status": "error", "attrs": {}}],
    }
    store.offer(base)
    for round_index in range(6):
        extra = [
            {"span_id": f"g{round_index}-{i}", "parent_span_id": "t-root",
             "name": "stitched", "start_s": 0.0, "end_s": 0.0,
             "duration_s": 0.0, "status": "ok", "attrs": {}}
            for i in range(rng.randint(0, 10))
        ]
        store.extend("t", extra)
        assert store.span_total <= 16
        doc = store.get("t")
        if doc is not None:
            assert len(doc["spans"]) <= 16


def test_priority_table_is_total_and_ordered():
    assert set(KEEP_PRIORITY) == {"probabilistic", "sampled", "slow", "error"}
    assert sorted(KEEP_PRIORITY.values()) == [0, 1, 2, 3]
    assert KEEP_PRIORITY["error"] == max(KEEP_PRIORITY.values())
