"""Properties of the chunked scheduler.

Two invariants make chunked parallel execution trustworthy:

1. **exact cover** -- for any iteration count, worker count and chunk
   spec, the planned chunks partition the position space ``[0, n)``:
   in order, pairwise disjoint, nothing dropped, nothing duplicated;
2. **schedule independence** -- the merged result of a chunked backend
   is a pure function of the program and its inputs: identical across
   ``jobs`` in {1, 2, 4}, across chunk sizes, across policies, and
   identical to the sequential reference backend.
"""

import pytest

from repro.api import Engine, EngineConfig
from repro.runtime.backends import (
    DYNAMIC_CHUNK_FACTOR,
    ChunkSpec,
    plan_chunks,
)

NS = (0, 1, 2, 3, 5, 8, 13, 50, 127)
JOBS = (1, 2, 4, 7)
SPECS = (
    ChunkSpec(),
    ChunkSpec("static", 1),
    ChunkSpec("static", 3),
    ChunkSpec("dynamic"),
    ChunkSpec("dynamic", 1),
    ChunkSpec("dynamic", 5),
)


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"{s.policy}-{s.size}")
@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("n", NS)
def test_chunks_cover_every_position_exactly_once(n, jobs, spec):
    chunks = plan_chunks(n, jobs, spec)
    flat = [pos for chunk in chunks for pos in chunk]
    assert flat == list(range(n))
    assert all(len(chunk) >= 1 for chunk in chunks)


@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("n", NS)
def test_static_chunking_matches_worker_count(n, jobs):
    chunks = plan_chunks(n, jobs, ChunkSpec())
    assert len(chunks) == min(jobs, n) if n else not chunks
    if chunks:
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1  # balanced within one

def test_dynamic_chunking_oversubscribes_workers():
    chunks = plan_chunks(1000, 4, ChunkSpec("dynamic"))
    assert len(chunks) == 4 * DYNAMIC_CHUNK_FACTOR


def test_planning_is_deterministic():
    for n in NS:
        for jobs in JOBS:
            for spec in SPECS:
                assert plan_chunks(n, jobs, spec) == plan_chunks(n, jobs, spec)


def test_chunk_spec_validation():
    with pytest.raises(ValueError, match="policy"):
        ChunkSpec("guided")
    with pytest.raises(ValueError, match="size"):
        ChunkSpec("static", 0)
    with pytest.raises(ValueError, match="unknown chunk spec"):
        ChunkSpec.from_json({"policy": "static", "sized": 3})
    assert ChunkSpec.from_json(None) == ChunkSpec()
    spec = ChunkSpec("dynamic", 7)
    assert ChunkSpec.from_json(spec.to_json()) == spec


# -- schedule independence on real programs ----------------------------------

SOURCE = """
program sched
param N, K
array H(K), V(N), IDX(N), OUT(N)

main
  do i = 1, N @ target
    t = V[i] + 1
    OUT[i] = t * 2
    H[IDX[i]] = H[IDX[i]] + t
  end
end
"""

PARAMS = {"N": 37, "K": 6}
ARRAYS = {
    "V": [i % 9 for i in range(37)],
    "IDX": [(i * 5) % 6 + 1 for i in range(37)],
}


@pytest.fixture(scope="module")
def engine():
    return Engine(EngineConfig(use_disk_cache=False))


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_results_deterministic_across_jobs_and_chunks(engine, backend):
    compiled = engine.compile(SOURCE)
    for jobs in (1, 2, 4):
        for chunk in (
            None,
            {"policy": "static", "size": 1},
            {"policy": "static", "size": 5},
            {"policy": "dynamic", "size": None},
            {"policy": "dynamic", "size": 3},
        ):
            report = compiled.execute(
                "target", PARAMS, ARRAYS,
                backend=backend, jobs=jobs, chunk=chunk,
            )
            # correct == merged memory identical to the sequential
            # interpreter run -- so every (jobs, chunk) configuration
            # producing correct=True produced the *same* memory.
            assert report.parallel and report.correct, (
                f"{backend} jobs={jobs} chunk={chunk} diverged"
            )
            assert report.backend_used == backend
