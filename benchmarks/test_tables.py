"""Benches regenerating Tables 1-3 and asserting their shape claims.

Each bench times the full regeneration path (summarize -> FACTOR ->
cascade -> execute -> classify) for one suite, and the assertions check
the paper's qualitative claims: classifications match, every measured
loop is correct, and the runtime overhead is small except for the
documented outliers (track's CIV slice, gromacs/calculix BOUNDS-COMP).
"""

from conftest import cached_table

from repro.evaluation import classification_compatible


def _assert_table_shape(report):
    for row in report.rows:
        assert row.correct, f"{row.benchmark}:{row.loop} produced wrong memory"
        assert classification_compatible(row.measured_class, row.paper_class), (
            f"{row.benchmark}:{row.loop}: {row.measured_class} vs {row.paper_class}"
        )


def test_table1_perfect_club(benchmark, table1):
    benchmark.pedantic(cached_table, args=("perfect",), rounds=1, iterations=1)
    _assert_table_shape(table1)
    # The paper: overhead negligible except track (47%).
    assert table1.benchmark_rtov["track"] > 0.10
    for name in ("flo52", "mdg", "arc2d", "ocean"):
        assert table1.benchmark_rtov[name] < 0.10


def test_table2_spec92(benchmark, table2):
    benchmark.pedantic(cached_table, args=("spec92",), rounds=1, iterations=1)
    _assert_table_shape(table2)
    # SPEC92: everything under a few percent of overhead.
    for name, rtov in table2.benchmark_rtov.items():
        assert rtov < 0.25, f"{name} overhead {rtov:.2%}"


def test_table3_spec2000(benchmark, table3):
    benchmark.pedantic(cached_table, args=("spec2000",), rounds=1, iterations=1)
    _assert_table_shape(table3)
    # BOUNDS-COMP overheads visible but bounded (paper: 3.4% and 8.5%).
    assert 0.0 < table3.benchmark_rtov["gromacs"] < 0.30
    assert 0.0 < table3.benchmark_rtov["calculix"] < 0.30
    # UMEG-dependent zeusmp passes with (near-)negligible overhead; the
    # paper reports 0.01%, our model's tiny loop bodies inflate the ratio.
    assert table3.benchmark_rtov["zeusmp"] < 0.05
