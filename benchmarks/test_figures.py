"""Benches regenerating Figures 10-13 and asserting their shape claims.

The absolute numbers come from our simulated machine; what must hold is
the paper's *shape*: the hybrid system beats the static baseline wherever
runtime analysis matters, the microsecond-granularity PERFECT-CLUB codes
are the exceptions, SPEC2000/2006 shows large wins, and scalability
flattens between 8 and 16 processors.
"""

from conftest import cached_figure

#: benchmarks the paper itself reports as slowdowns / parity on 4 procs
#: (tiny loop granularity): dyfesm 1.71, ocean 1.92, qcd 1.05.  arc2d's
#: 2-microsecond loops also slow down under our spawn model.
SMALL_GRANULARITY = {"dyfesm", "ocean", "qcd", "arc2d", "flo52"}

#: spec77 spends 16.5% of coverage in a TLS loop whose marking overhead
#: exceeds the gain at 4 processors; the paper's own number (0.62) is
#: also close to its baseline.
EXPECTED_CLOSE = {"spec77"}


def test_fig10_perfect_timing(benchmark, fig10):
    benchmark.pedantic(cached_figure, args=("fig10",), rounds=1, iterations=1)
    for name in fig10.benchmarks:
        hybrid = fig10.hybrid_norm[name]
        base = fig10.baseline_norm[name]
        if name in SMALL_GRANULARITY:
            continue  # granularity-bound: no claim either way
        slack = 0.12 if name in EXPECTED_CLOSE else 0.05
        assert hybrid <= base + slack, f"{name}: hybrid {hybrid} vs baseline {base}"
    # The paper's slowdown case is reproduced: dyfesm exceeds sequential.
    assert fig10.hybrid_norm["dyfesm"] > 1.0
    # Runtime analysis pays off where the paper says it does.
    for name in ("bdna", "trfd", "track"):
        assert fig10.hybrid_norm[name] < fig10.baseline_norm[name]


def test_fig11_spec92_timing(benchmark, fig11):
    benchmark.pedantic(cached_figure, args=("fig11",), rounds=1, iterations=1)
    # nasa7 and matrix300 need runtime tests: hybrid must beat baseline.
    assert fig11.hybrid_norm["nasa7"] < fig11.baseline_norm["nasa7"]
    assert fig11.hybrid_norm["matrix300"] < fig11.baseline_norm["matrix300"]
    # Statically analyzable codes: parity with the baseline, both winning.
    for name in ("swm256", "tomcatv", "mdljdp2", "hydro2d"):
        assert abs(fig11.hybrid_norm[name] - fig11.baseline_norm[name]) < 0.05
        assert fig11.hybrid_norm[name] < 1.0


def test_fig12_spec2000_timing(benchmark, fig12):
    benchmark.pedantic(cached_figure, args=("fig12",), rounds=1, iterations=1)
    # Large-granularity suite: hybrid wins or ties everywhere (paper's
    # headline claim vs xlf).
    for name in fig12.benchmarks:
        assert fig12.hybrid_norm[name] <= fig12.baseline_norm[name] + 0.05
    # The runtime-analysis codes are the big wins.
    for name in ("wupwise", "zeusmp", "gromacs", "calculix"):
        assert fig12.hybrid_norm[name] < fig12.baseline_norm[name] - 0.1
    # applu's wavefront loops stay sequential: modest result (paper 0.65).
    assert fig12.hybrid_norm["applu"] > 0.5


def test_fig13_scalability(benchmark, fig13):
    benchmark.pedantic(cached_figure, args=("fig13",), rounds=1, iterations=1)
    for name in fig13.benchmarks:
        curve = [fig13.scalability[p][name] for p in (1, 2, 4, 8, 16)]
        # Monotone non-decreasing speedups.
        for a, b in zip(curve, curve[1:]):
            assert b >= a - 0.05, f"{name}: {curve}"
        if name == "applu":
            continue  # mostly sequential: flat curve
        su8, su16 = curve[3], curve[4]
        # 8 -> 16 flattening (shared bandwidth): gain well below 2x.
        if su8 > 1.5:
            assert su16 / su8 < 1.7, f"{name}: {su8} -> {su16}"
    # The well-scaling codes reach substantial speedups at 16.
    for name in ("swim", "mgrid", "zeusmp"):
        assert fig13.scalability[16][name] > 4.0
