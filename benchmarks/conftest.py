"""Shared fixtures for the benchmark harness.

Table/figure generation is expensive (every benchmark is analyzed and
executed); results are cached per session so pytest-benchmark's repeat
rounds measure a warm harness and the shape assertions reuse one
measurement.
"""

import pytest

from repro.evaluation import generate_figure, generate_table

_CACHE: dict = {}


def cached_table(suite: str):
    key = ("table", suite)
    if key not in _CACHE:
        _CACHE[key] = generate_table(suite)
    return _CACHE[key]


def cached_figure(figure: str):
    key = ("figure", figure)
    if key not in _CACHE:
        _CACHE[key] = generate_figure(figure)
    return _CACHE[key]


@pytest.fixture(scope="session")
def table1():
    return cached_table("perfect")


@pytest.fixture(scope="session")
def table2():
    return cached_table("spec92")


@pytest.fixture(scope="session")
def table3():
    return cached_table("spec2000")


@pytest.fixture(scope="session")
def fig10():
    return cached_figure("fig10")


@pytest.fixture(scope="session")
def fig11():
    return cached_figure("fig11")


@pytest.fixture(scope="session")
def fig12():
    return cached_figure("fig12")


@pytest.fixture(scope="session")
def fig13():
    return cached_figure("fig13")
