"""Micro-benchmarks for the hash-consed symbolic core.

The acceptance bar for the interning/memoization layer is that a
*repeated* full-suite analysis runs at least 2x faster than the cold
path.  The caches make it dramatically faster than that (the second run
is almost entirely dict lookups), but the assertion is kept at the
conservative 2x so the benchmark stays robust on slow or noisy machines.
"""

import time

import pytest

from repro.core import HybridAnalyzer
from repro.pdag import Cascade, CascadeStage, p_leaf
from repro.symbolic import as_expr, cache_stats, clear_caches, gt0, sym
from repro.symbolic.expr import ArrayRef
from repro.workloads import ALL_BENCHMARKS


def _analyze_full_suite():
    for spec in ALL_BENCHMARKS:
        analyzer = HybridAnalyzer(spec.program)
        for loop in spec.loops:
            analyzer.analyze(loop.label)


def test_expressions_are_hash_consed():
    """Structurally equal expressions are pointer-equal."""
    a = sym("N") * 3 + sym("M") - 7
    b = sym("N") * 3 + sym("M") - 7
    assert a is b
    assert (a + 1) is (b + 1)


def test_interning_survives_cache_clear():
    """Clearing caches degrades identity, never correctness."""
    a = sym("N") + 1
    clear_caches()
    b = sym("N") + 1
    assert a == b  # structural equality still holds
    assert b is (sym("N") + 1)  # and new values intern afresh


def test_repeated_full_suite_analysis_speedup():
    """Second full-suite analysis must be >= 2x faster than the cold run."""
    clear_caches()
    t0 = time.perf_counter()
    _analyze_full_suite()
    cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    _analyze_full_suite()
    warm = time.perf_counter() - t0

    speedup = cold / max(warm, 1e-9)
    assert speedup >= 2.0, (
        f"warm full-suite analysis only {speedup:.2f}x faster "
        f"(cold={cold:.3f}s, warm={warm:.3f}s)"
    )


def test_caches_report_hits_after_warm_run():
    """The memo registry records real reuse during repeated analysis."""
    clear_caches()
    _analyze_full_suite()
    _analyze_full_suite()
    stats = cache_stats()
    assert stats["core.cascade_of"]["hits"] > 0
    assert stats["symbolic.expr"]["hit_rate"] > 0.5
    assert stats["usr.nodes"]["hits"] > 0


def test_cascade_shares_leaf_evaluations_across_stages():
    """A leaf shared by several cascade stages evaluates its (possibly
    expensive) condition once per cascade run; the modelled cost still
    counts each logical evaluation."""
    calls = {"n": 0}

    def probe(_idx):
        calls["n"] += 1
        return -1  # leaf is false -> every stage is consulted

    shared = p_leaf(gt0(as_expr(ArrayRef("PROBE", [1]))))
    cascade = Cascade(
        [
            CascadeStage("O(1)", shared),
            CascadeStage("O(N)", shared),
            CascadeStage("O(N^2)", shared),
        ]
    )
    outcome = cascade.evaluate({"PROBE": probe})
    assert not outcome.passed
    assert calls["n"] == 1  # evaluated once, shared across stages
    assert outcome.stats.leaf_evals == 3  # modelled cost unchanged
