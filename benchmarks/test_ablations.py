"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one inference capability and measures what the
paper's narrative predicts: UMEG reshaping unlocks zeusmp, the
monotonicity rule unlocks the trfd/dyfesm-style index-array loops, CIV
aggregation unlocks bdna/track, and direct USR evaluation costs orders
of magnitude more than the predicate cascade.
"""

import pytest

from repro.core import HybridAnalyzer
from repro.runtime import HybridExecutor, evaluate_usr_cost
from repro.workloads import get_benchmark


def _run(spec, label, analyzer, **executor_kwargs):
    plan = analyzer.analyze(label)
    ex = HybridExecutor(spec.program, plan, **executor_kwargs)
    params, arrays = spec.dataset(1)
    return plan, ex.run(params, arrays)


def test_ablation_umeg_reshaping(benchmark):
    """Section 3.4: the UMEG-preserving distribution extracts a predicate
    where the undistributed subtraction fails (zeusmp/calculix)."""
    from repro.core import FactorContext, factor
    from repro.lmad import interval
    from repro.symbolic import b_not, cmp_eq, sym
    from repro.usr import usr_gate, usr_leaf, usr_subtract, usr_union

    c = cmp_eq(sym("jbeg"), sym("js"))
    n, m = sym("N"), sym("M")
    accessed = usr_union(
        usr_gate(c, usr_leaf(interval(1, n))),
        usr_gate(b_not(c), usr_leaf(interval(10000, 10000 + n))),
    )
    covered = usr_union(
        usr_gate(c, usr_leaf(interval(1, m))),
        usr_gate(b_not(c), usr_leaf(interval(10000, 10000 + m))),
    )
    exposed = usr_subtract(accessed, covered)  # empty iff N <= M per gate

    def both():
        with_umeg = factor(exposed, FactorContext(use_reshaping=True))
        without = factor(exposed, FactorContext(use_reshaping=False))
        return with_umeg, without

    with_umeg, without = benchmark.pedantic(both, rounds=1, iterations=1)
    env = {"jbeg": 3, "js": 5, "N": 50, "M": 60}
    assert exposed.evaluate(env) == set()
    assert with_umeg.evaluate(env), "UMEG-reshaped predicate must succeed"
    # Soundness holds for both; only the reshaped one is precise enough.
    bad = {"jbeg": 3, "js": 5, "N": 60, "M": 50}
    assert not with_umeg.evaluate(bad)


def test_ablation_monotonicity(benchmark):
    """Section 3.3: without MON the index-array reduction loops lose
    their O(N) predicate and fall back to conservative treatment."""
    spec = get_benchmark("dyfesm")

    def both():
        with_plan, with_report = _run(
            spec, "solxdd_do10", HybridAnalyzer(spec.program)
        )
        without_plan, without_report = _run(
            spec, "solxdd_do10",
            HybridAnalyzer(spec.program, use_monotonicity=False),
        )
        return (with_plan, with_report), (without_plan, without_report)

    (wp, wr), (op, orr) = benchmark.pedantic(both, rounds=1, iterations=1)
    assert wr.correct and orr.correct
    # With MON the updates are proven independent (direct access);
    # without it the loop must run as a reduction.
    assert wr.decisions["XD"].strategy == "shared"
    assert orr.decisions["XD"].strategy in ("reduction", "dependent")


def test_ablation_civ_aggregation(benchmark):
    """Section 3.3: without CIVagg bdna's ACTFOR_DO240 cannot be
    parallelized statically."""
    spec = get_benchmark("bdna")

    def both():
        with_plan = HybridAnalyzer(spec.program).analyze("actfor_do240")
        without_plan = HybridAnalyzer(
            spec.program, use_civagg=False
        ).analyze("actfor_do240")
        return with_plan, without_plan

    with_plan, without_plan = benchmark.pedantic(both, rounds=1, iterations=1)
    assert with_plan.classification() == "CIVagg"
    assert without_plan.classification() != "CIVagg"


def test_ablation_cascade_vs_direct_usr_eval(benchmark):
    """Section 3's motivation: direct USR evaluation costs O(accesses);
    the cascade costs O(1)/O(N)."""
    from repro.core import flow_independence_usr
    from repro.ir import summarize_loop
    from repro.pdag import EvalStats

    spec = get_benchmark("trfd")
    inp = summarize_loop(spec.program, "olda_do300")
    find = flow_independence_usr(inp.summaries["XKL"])
    plan = HybridAnalyzer(spec.program).analyze("olda_do300")
    cascade = plan.arrays["XKL"].flow
    params, arrays = spec.dataset(1)
    env = dict(params)
    env.update({k: list(v) for k, v in arrays.items()})
    env["XKL"] = [0] * 16384

    def both():
        stats = EvalStats()
        outcome = cascade.evaluate(env)
        _, exact_cost = evaluate_usr_cost(find, env)
        return outcome, exact_cost

    outcome, exact_cost = benchmark.pedantic(both, rounds=1, iterations=1)
    assert outcome.passed
    assert exact_cost > 20 * outcome.stats.total_steps


def test_ablation_interprocedural(benchmark):
    """Without interprocedural summaries (the baseline's handicap) the
    dyfesm SOLVH loop is unanalyzable."""
    spec = get_benchmark("dyfesm")

    def both():
        inter = HybridAnalyzer(spec.program).analyze("solvh_do20")
        intra = HybridAnalyzer(
            spec.program, interprocedural=False
        ).analyze("solvh_do20")
        return inter, intra

    inter, intra = benchmark.pedantic(both, rounds=1, iterations=1)
    assert not inter.approximate
    assert intra.approximate  # calls became opaque clobbers
