"""Benches for the paper's runtime-overhead claims (Section 6, RTov).

The paper's headline: predicate overhead is under 1% of parallel runtime
for most codes, with three documented exceptions -- track (CIV slice,
47%), gromacs (BOUNDS-COMP, 3.4%) and calculix (BOUNDS-COMP, 8.5%).
Our simulated overheads won't match those percentages exactly, but the
ordering and the orders of magnitude must.
"""

from conftest import cached_table

from repro.core import HybridAnalyzer
from repro.runtime import CostModel, HybridExecutor
from repro.workloads import get_benchmark


def test_predicate_overhead_is_negligible(benchmark):
    """O(1)/O(N) predicate loops: test cost is a vanishing fraction of
    the loop's work at realistic granularities."""
    spec = get_benchmark("wupwise")
    plan = HybridAnalyzer(spec.program).analyze("muldeo_do100")
    ex = HybridExecutor(spec.program, plan)
    params, arrays = spec.dataset(2)

    report = benchmark.pedantic(
        lambda: ex.run(params, arrays), rounds=1, iterations=1
    )
    assert report.parallel and report.correct
    assert report.total_overhead < 0.02 * report.seq_work


def test_outlier_ordering(benchmark, table1, table3):
    """track >> gromacs/calculix >> everything else."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    track = table1.benchmark_rtov["track"]
    gromacs = table3.benchmark_rtov["gromacs"]
    calculix = table3.benchmark_rtov["calculix"]
    quiet = [
        table1.benchmark_rtov[n] for n in ("flo52", "mdg", "arc2d")
    ] + [table3.benchmark_rtov[n] for n in ("swim", "mgrid", "zeusmp")]
    assert track > max(gromacs, calculix) > 0
    assert max(quiet) < min(gromacs, calculix) + 0.05
    assert max(quiet) < track


def test_civ_slice_cost_tracks_loop_cost(benchmark):
    """track's CIV-COMP slice is nearly as expensive as the loop body
    (the paper's 47%): the slice fraction must be large."""
    spec = get_benchmark("track")
    plan = HybridAnalyzer(spec.program).analyze("extend_do400")
    ex = HybridExecutor(spec.program, plan)
    params, arrays = spec.dataset(1)
    report = benchmark.pedantic(
        lambda: ex.run(params, arrays), rounds=1, iterations=1
    )
    assert report.civ_overhead > 0.3 * report.seq_work


def test_speculation_overhead_proportional_to_accesses(benchmark):
    """LRPD marking cost grows with the traced accesses."""
    spec = get_benchmark("track")
    plan = HybridAnalyzer(spec.program).analyze("nlfilt_do300")

    def run(scale):
        ex = HybridExecutor(spec.program, plan, exact_strategy="tls")
        params, arrays = spec.dataset(scale)
        return ex.run(params, arrays)

    r1 = benchmark.pedantic(lambda: run(1), rounds=1, iterations=1)
    r2 = run(2)
    assert r1.parallel and r2.parallel
    assert r2.speculation_overhead > r1.speculation_overhead
