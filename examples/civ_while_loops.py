#!/usr/bin/env python3
"""Parallelizing while-loops with conditionally incremented induction
variables (CIVs) -- the paper's track benchmark scenario (Section 3.3).

The loop below compacts variable-length records into an output buffer
through a running offset ``civ`` that only advances when a record is
non-empty.  No closed form exists for ``civ``, so classical dependence
tests (and our commercial-compiler baseline) give up.  The hybrid
framework:

1. models ``civ``'s value at iteration entry as an opaque prefix array
   (the paper's ``CIV@k`` names in Fig. 7(b));
2. rewrites the gated write interval ``[civ+1, civ+NHITS(i)]`` into the
   ungated ``[civ@i + 1, civ@(i+1)]`` (CIVagg), which makes output
   independence provable *statically* from the prefix's monotonicity;
3. at run time precomputes the prefix values with a loop slice
   (CIV-COMP) -- the overhead the paper measures at 47% for track --
   and runs the iterations in parallel.

Run:  python examples/civ_while_loops.py
"""

import random

from repro.api import default_engine
from repro.baselines import StaticAffineCompiler
from repro.runtime import CostModel

SOURCE = """
program track_extend
param NTRKS
array TRK(8192), OUT(16384), NHITS(4096)

main
  i = 1
  civ = 0
  while i <= NTRKS @ extend_do400
    if NHITS[i] > 0 then
      do j = 1, NHITS[i]
        OUT[civ + j] = TRK[i] + j
      end
      civ = civ + NHITS[i]
    end
    i = i + 1
  end
end
"""


def main() -> None:
    compiled = default_engine().compile(SOURCE)
    program = compiled.program

    plan = compiled.plan("extend_do400")
    print(f"classification: {plan.classification()}")
    print(f"techniques:     {', '.join(plan.techniques())}")
    for info in plan.civs:
        print(f"CIV detected:   {info.name} -> prefix array {info.prefix_array}")

    baseline = StaticAffineCompiler(program)
    verdict = baseline.analyze("extend_do400")
    print(f"baseline:       parallel={verdict.parallel} ({verdict.reason})")

    rng = random.Random(42)
    params = {"NTRKS": 40}
    arrays = {
        "NHITS": [rng.randrange(0, 5) for _ in range(4096)],
        "TRK": [i % 9 for i in range(1, 8193)],
    }
    report = compiled.execute("extend_do400", params, arrays)
    cost = CostModel(spawn_overhead=10)
    print(f"\nparallelized:   {report.parallel}, correct: {report.correct}")
    print(f"CIV-COMP slice: {report.civ_overhead:.0f} work units "
          f"of {report.seq_work:.0f} "
          f"({report.civ_overhead / report.seq_work:.0%} -- the paper's "
          f"track overhead is 47%)")
    for procs in (2, 4, 8, 16):
        print(f"speedup on {procs:2d} procs: {report.speedup(procs, cost):.2f}x")


if __name__ == "__main__":
    main()
