#!/usr/bin/env python3
"""Working directly with the USR and PDAG languages.

This example rebuilds the paper's Figures 3(c) and 4 by hand: the
flow-independence USR for array XE of SOLVH_DO20, its translation
through the FACTOR inference algorithm, the simplified predicate, and
the complexity-ordered cascade -- then contrasts the cost of evaluating
the predicate with the cost of evaluating the USR exactly (the paper's
motivation for the whole Section 3).

Run:  python examples/predicate_playground.py
"""

from repro.core import FactorContext, factor
from repro.lmad import interval
from repro.pdag import EvalStats, build_cascade, simplify
from repro.runtime import evaluate_usr_cost
from repro.symbolic import cmp_eq, cmp_ne, sym
from repro.usr import usr_gate, usr_leaf, usr_subtract, usr_union


def main() -> None:
    ns, np_, s = sym("NS"), sym("NP"), sym("SYM")

    # Fig. 3(c): FIND-USR for XE.
    #   A = (SYM != 1) # ([0, NS-1] - [0, 16*NP-1])
    #   B = (SYM == 1) # [0, NS-1]
    written = usr_leaf(interval(0, 16 * np_ - 1))
    read = usr_leaf(interval(0, ns - 1))
    a = usr_gate(cmp_ne(s, 1), usr_subtract(read, written))
    b = usr_gate(cmp_eq(s, 1), read)
    find_xe = usr_union(a, b)
    print("FIND-USR(XE):")
    print(f"  {find_xe!r}\n")

    # Fig. 4: the FACTOR translation F(A u B) = NS <= 16*NP and SYM != 1.
    predicate = simplify(factor(find_xe, FactorContext()))
    print("F(FIND-USR):")
    print(f"  {predicate!r}\n")

    cascade = build_cascade(predicate)
    print("cascade stages:", [stage.label for stage in cascade.stages])

    # Runtime evaluation under three instantiations.
    for env in (
        {"SYM": 0, "NS": 16, "NP": 1},   # independent (paper's success)
        {"SYM": 1, "NS": 16, "NP": 1},   # XE never written
        {"SYM": 0, "NS": 40, "NP": 1},   # reads beyond the written region
    ):
        outcome = cascade.evaluate(env)
        concrete = find_xe.evaluate(env)
        print(f"  env={env}: predicate "
              f"{'PASS' if outcome.passed else 'fail'} "
              f"({outcome.stats.total_steps} steps); "
              f"exact set = {sorted(concrete)[:6]}{'...' if len(concrete) > 6 else ''}")

    # The Section 3 cost argument: the predicate is O(1); direct USR
    # evaluation materializes every location.
    env = {"SYM": 0, "NS": 4000, "NP": 250}
    stats = EvalStats()
    cascade.stages[0].predicate.evaluate(env, stats)
    _, exact_cost = evaluate_usr_cost(find_xe, env)
    print(f"\ncost at NS=4000: predicate {stats.total_steps} steps, "
          f"exact USR evaluation {exact_cost} set operations "
          f"({exact_cost // max(stats.total_steps, 1)}x more)")


if __name__ == "__main__":
    main()
