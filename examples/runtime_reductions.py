#!/usr/bin/env python3
"""Runtime reduction optimization and BOUNDS-COMP (Section 4).

Three progressively harder histogram/force-accumulation loops:

1. ``RRED``: the updates go through an index array.  The monotonicity
   predicate (footnote 5 of the paper: ``B(i) < B(i+1)``) is evaluated
   at run time; when the index array happens to be monotone the loop is
   proven fully independent and runs with *direct* shared access -- no
   reduction machinery at all.
2. ``SRED`` fallback: with colliding indexes the same loop runs as a
   classic parallel reduction (private partial sums, merged after).
3. ``BOUNDS-COMP``: the reduced array is assumed-size (its extent is a
   runtime parameter, like gromacs's C-allocated force array), so the
   runtime first MIN/MAX-reduces the touched index range in parallel --
   Fig. 7(a) -- and only then allocates/zeroes the private copies.

Run:  python examples/runtime_reductions.py
"""

from repro.api import default_engine

SOURCE = """
program reductions
param N, FSIZE
array A(4096), B(4096), W(4096), F(FSIZE), SHIFT(4096), X(8192)

main
  do i = 1, N @ histogram
    A[B[i]] = A[B[i]] + W[i]
  end
  do n = 1, N @ forces
    do j = 1, 12
      W[j] = X[n] * j
    end
    F[3*SHIFT[n] + 1] = F[3*SHIFT[n] + 1] + W[1]
    F[3*SHIFT[n] + 2] = F[3*SHIFT[n] + 2] + W[2]
  end
end
"""


def main() -> None:
    compiled = default_engine().compile(SOURCE)

    # --- 1+2: the histogram loop under two datasets -------------------
    plan = compiled.plan("histogram")
    print("histogram loop:", plan.classification())

    monotone = {"B": [3 * i + 1 for i in range(4096)], "W": [1] * 4096}
    r1 = compiled.execute("histogram", {"N": 32, "FSIZE": 4096}, monotone)
    print(f"  monotone index array -> {r1.decisions['A'].strategy} "
          f"(via {r1.decisions['A'].via}, stage {r1.decisions['A'].passed_stage}); "
          f"correct={r1.correct}")

    colliding = {"B": [(i % 7) + 1 for i in range(4096)], "W": [1] * 4096}
    r2 = compiled.execute("histogram", {"N": 32, "FSIZE": 4096}, colliding)
    print(f"  colliding index array -> {r2.decisions['A'].strategy}; "
          f"correct={r2.correct}")

    # The same validated loop on a *real* parallel backend: chunked
    # execution on a thread pool, delta-merged, checked against the
    # sequential interpreter (see docs/ARCHITECTURE.md, "Execution
    # backends & benchmarking"; 'process' and 'numpy' plug in the same
    # way, and `repro-eval bench` measures them all).
    r2p = compiled.execute(
        "histogram", {"N": 32, "FSIZE": 4096}, colliding,
        backend="thread", jobs=4, chunk={"policy": "dynamic"},
    )
    print(f"  thread backend     -> ran on {r2p.backend_used!r} "
          f"({r2p.jobs} jobs, {r2p.chunks} chunks, "
          f"{r2p.wall_s * 1e3:.1f} ms); correct={r2p.correct}")

    # --- 3: assumed-size reduction needs BOUNDS-COMP -------------------
    plan_f = compiled.plan("forces")
    aplan = plan_f.arrays["F"]
    print(f"\nforces loop: {plan_f.classification()} "
          f"(needs BOUNDS-COMP: {aplan.needs_bounds_comp})")
    data = {
        "SHIFT": [((i * 389) % 1000) for i in range(4096)],
        "X": [i % 5 for i in range(1, 8193)],
        # The histogram loop also runs in main: give it valid indexes.
        "B": [(i % 7) + 1 for i in range(4096)],
        "W": [1] * 4096,
    }
    r3 = compiled.execute("forces", {"N": 48, "FSIZE": 4096}, data)
    print(f"  bounds estimation cost: {r3.bounds_overhead:.0f} iterations "
          f"(vs {r3.seq_work:.0f} loop work units "
          f"-> {r3.bounds_overhead / r3.seq_work:.1%}; the paper's gromacs "
          f"overhead is 3.4%)")
    print(f"  parallel={r3.parallel}, correct={r3.correct}")


if __name__ == "__main__":
    main()
