#!/usr/bin/env python3
"""Quickstart: analyze and conditionally parallelize one loop.

This walks the full pipeline of the paper on the Section 1.2 running
example (dyfesm's SOLVH_DO20) through the :mod:`repro.api` Engine
facade: compile once (interprocedural USR summarization, memoized), ask
the compiled handle for the loop plan (the FACTOR translation to a
predicate cascade), and execute the loop under the hybrid runtime --
which validates the result against sequential execution.

Run:  python examples/quickstart.py
"""

from repro.api import Engine, EngineConfig
from repro.runtime import CostModel

SOURCE = """
program dyfesm_solvh
param N, SYM, NS, NP
array HE(40960), XE(1024), IA(64), IB(64)

subroutine geteu(XE[], SYM, NP)
  if SYM != 1 then
    do i = 1, NP
      do j = 1, 16
        XE[16*(i-1) + j] = i + j
      end
    end
  end
end

subroutine matmult(HE[], XE[], NS)
  do j = 1, NS
    HE[j] = XE[j]
    XE[j] = j * 2
  end
end

subroutine solvhe(HE[], NP)
  do j = 1, 3
    do i = 1, NP
      HE[(i-1)*8 + j] = HE[(i-1)*8 + j] + 1
    end
  end
end

main
  do i = 1, N @ solvh_do20
    do k = 1, IA[i]
      id = IB[i] + k - 1
      call geteu(XE[], SYM, NP)
      call matmult(HE[] + 32*(id-1), XE[], NS)
      call solvhe(HE[] + 32*(id-1), NP)
    end
  end
end
"""


def main() -> None:
    # One long-lived engine owns parsing, summaries, plan memoization
    # and the disk cache; compile once, then plan/execute through the
    # compiled handle.
    engine = Engine(EngineConfig(use_disk_cache=False))
    compiled = engine.compile(SOURCE)

    # 1. Static analysis: summaries -> independence USRs -> FACTOR ->
    #    simplified predicate cascades, per array.
    plan = compiled.plan("solvh_do20")
    print(f"classification: {plan.classification()}")
    print(f"techniques:     {', '.join(plan.techniques())}")
    for name, aplan in plan.arrays.items():
        print(f"  {name:4s} -> {aplan.transform}")
        for kind, cascade in aplan.runtime_cascades():
            stages = ", ".join(s.label for s in cascade.stages)
            print(f"         {kind} cascade: {stages}")

    # 2. Runtime: evaluate cascades against real inputs, execute.
    params = {"N": 6, "SYM": 0, "NS": 16, "NP": 1}
    arrays = {
        "IA": [2] * 64,
        "IB": [1 + 2 * i for i in range(64)],  # disjoint HE slots
    }
    report = compiled.execute("solvh_do20", params, arrays)
    cost = CostModel(spawn_overhead=5)
    print(f"\nparallelized:   {report.parallel}")
    print(f"result correct: {report.correct}")
    for name, decision in report.decisions.items():
        stage = f" (passed {decision.passed_stage})" if decision.passed_stage else ""
        print(f"  {name:4s} -> {decision.strategy} via {decision.via}{stage}")
    print(f"test overhead:  {report.total_overhead:.0f} work units "
          f"of {report.seq_work:.0f}")
    for procs in (2, 4, 8):
        print(f"speedup on {procs} procs: {report.speedup(procs, cost):.2f}x")

    # 3. The same loop with colliding slots: predicates fail, the runtime
    #    falls back -- and the result is STILL correct.
    arrays_bad = dict(arrays, IB=[1] * 64)
    report_bad = compiled.execute("solvh_do20", params, arrays_bad)
    print(f"\nwith colliding IB slots: parallel={report_bad.parallel}, "
          f"correct={report_bad.correct}")
    print("decisions:",
          {n: d.strategy for n, d in report_bad.decisions.items()})


if __name__ == "__main__":
    main()
