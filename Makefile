PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench docs-check batch clean

## Tier-1 verification: the full unit/property/integration/benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Performance micro-benchmarks only (interning speedup, overheads, ...).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Verify README/ARCHITECTURE links and module-map paths resolve.
docs-check:
	$(PYTHON) tools/check_doc_links.py

## Analyze the whole benchmark suite concurrently (persistent cache).
batch:
	$(PYTHON) -m repro.evaluation batch

clean:
	rm -rf .repro-cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
