PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-trajectory bench-schema serve serve-multiproc serving-trajectory docs-check api-surface examples batch fuzz clean

## Tier-1 verification: the full unit/property/integration/benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Fast path: everything except the slow soak tests (what CI's test job runs).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Performance micro-benchmarks only (interning speedup, overheads, ...).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Regenerate the committed BENCH_core.json trajectory point (real
## wall-clock per execution backend; exits non-zero on divergence).
bench-trajectory:
	$(PYTHON) -m repro.evaluation bench --suite core --jobs 4

## Verify every BENCH_*.json trajectory file parses, matches the pinned
## schema and is byte-stable canonical JSON.
bench-schema:
	$(PYTHON) tools/check_bench_schema.py

## Serve the analyze/execute protocol on TCP port 7070 (Ctrl-C for a
## graceful shutdown that drains in-flight requests).
serve:
	$(PYTHON) -m repro.evaluation serve --port 7070 --workers 4

## Serve via the multi-process front tier: 4 supervised backend
## processes, digest routing, hot-shard replication (see docs/SERVER.md).
serve-multiproc:
	$(PYTHON) -m repro.evaluation serve --port 7070 --topology multiproc --backends 4

## Regenerate the committed BENCH_serving.json trajectory point (the
## sharded-vs-shared pool A/B at three concurrency levels, plus the
## multiproc front-tier A/B with its zipf hot-shard run).
serving-trajectory:
	$(PYTHON) -m repro.evaluation loadgen --bench --levels 4,16,32 --requests 400

## Verify README/ARCHITECTURE links and module-map paths resolve.
docs-check:
	$(PYTHON) tools/check_doc_links.py

## Verify repro.api.__all__ matches the committed docs/api_surface.txt.
api-surface:
	$(PYTHON) tools/check_api_surface.py

## Run every example script (facade smoke test).
examples:
	for example in examples/*.py; do echo "== $$example"; $(PYTHON) "$$example" || exit 1; done

## Analyze the whole benchmark suite concurrently (persistent cache).
batch:
	$(PYTHON) -m repro.evaluation batch

## Differential fuzzing: 500 seeds, parallel, cached per seed.
fuzz:
	$(PYTHON) -m repro.evaluation fuzz --seeds 500

clean:
	rm -rf .repro-cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
