PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-trajectory bench-schema docs-check api-surface examples batch fuzz clean

## Tier-1 verification: the full unit/property/integration/benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Fast path: everything except the slow soak tests (what CI's test job runs).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Performance micro-benchmarks only (interning speedup, overheads, ...).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Regenerate the committed BENCH_core.json trajectory point (real
## wall-clock per execution backend; exits non-zero on divergence).
bench-trajectory:
	$(PYTHON) -m repro.evaluation bench --suite core --jobs 4

## Verify every BENCH_*.json trajectory file parses, matches the pinned
## schema and is byte-stable canonical JSON.
bench-schema:
	$(PYTHON) tools/check_bench_schema.py

## Verify README/ARCHITECTURE links and module-map paths resolve.
docs-check:
	$(PYTHON) tools/check_doc_links.py

## Verify repro.api.__all__ matches the committed docs/api_surface.txt.
api-surface:
	$(PYTHON) tools/check_api_surface.py

## Run every example script (facade smoke test).
examples:
	for example in examples/*.py; do echo "== $$example"; $(PYTHON) "$$example" || exit 1; done

## Analyze the whole benchmark suite concurrently (persistent cache).
batch:
	$(PYTHON) -m repro.evaluation batch

## Differential fuzzing: 500 seeds, parallel, cached per seed.
fuzz:
	$(PYTHON) -m repro.evaluation fuzz --seeds 500

clean:
	rm -rf .repro-cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
